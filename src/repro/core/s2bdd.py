"""The scalable-and-sampling BDD (S²BDD).

This is the paper's central data structure (Section 4.3).  Unlike an
ordinary BDD, the S²BDD

* keeps only a single layer of nodes plus the two sinks (earlier layers are
  never needed again),
* classifies intermediate graphs as connected / disconnected as early as
  possible (Lemmas 4.1 and 4.2), accumulating the bound masses ``p_c`` and
  ``p_d`` on the sinks,
* caps the layer width at ``w``; when a layer would exceed the cap, the
  lowest-priority nodes (heuristic ``h(n)``, Eq. 10) are *deleted* and
  turned into **sampling strata**, and
* finally samples completions of the strata — i.e. possible worlds that are
  *not* already covered by the bounds — which is exactly the requirement of
  the stratified estimator.

The resulting estimate is ``R̂ = p_c + Σ_j p_j · R̂_j`` where ``j`` ranges
over strata and ``R̂_j`` estimates the conditional reliability of stratum
``j``.  When the width cap is never hit, there are no strata and the result
is the exact reliability (the paper's "our approach computes the exact
answer for small-scale graphs").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.core.bounds import ReliabilityBounds
from repro.core.estimators import EstimatorKind
from repro.core.frontier import EdgeOrdering, FrontierPlan, build_frontier_plan
from repro.core.state import CONNECTED, DISCONNECTED, LIVE, NodeState, TransitionTable
from repro.core.stratified import reduced_sample_count
from repro.exceptions import ConfigurationError
from repro.graph.compiled import IntUnionFind
from repro.graph.uncertain_graph import UncertainGraph
from repro.utils.kahan import KahanSum
from repro.utils.rng import RandomLike, resolve_rng
from repro.utils.validation import check_non_negative_int, check_positive_int

__all__ = ["S2BDD", "S2BDDResult", "Stratum"]

Vertex = Hashable

#: Unresolved probability mass below which the result is treated as exact.
_EXACT_MASS_TOLERANCE = 1e-12


@dataclass(frozen=True)
class Stratum:
    """A deleted S²BDD node, i.e. one sampling subgroup.

    Attributes
    ----------
    layer:
        Number of edges already decided; the state refers to the frontier
        after that many edges.
    partition / terminal_counts:
        The node's frontier state (see :class:`repro.core.state.NodeState`).
    probability:
        Probability mass of the intermediate graph (``p_n``).
    """

    layer: int
    partition: Tuple[int, ...]
    terminal_counts: Tuple[int, ...]
    probability: float

    @property
    def state(self) -> NodeState:
        """The stratum's frontier state as a :class:`NodeState`."""
        return NodeState(self.partition, self.terminal_counts)


@dataclass
class S2BDDResult:
    """Outcome of one S²BDD reliability estimation."""

    reliability: float
    bounds: ReliabilityBounds
    samples_requested: int
    samples_reduced: int
    samples_used: int
    num_strata: int
    exact: bool
    peak_width: int
    layers_processed: int
    deleted_probability_mass: float
    estimator: EstimatorKind

    @property
    def lower_bound(self) -> float:
        """Certified lower bound ``p_c``."""
        return self.bounds.lower

    @property
    def upper_bound(self) -> float:
        """Certified upper bound ``1 − p_d``."""
        return self.bounds.upper


class S2BDD:
    """Scalable-and-sampling BDD estimator for one graph and terminal set.

    Parameters
    ----------
    graph:
        The uncertain graph.
    terminals:
        The terminal vertices whose mutual connectivity is measured.
    max_width:
        Width cap ``w``: the maximum number of nodes kept per layer.
    edge_ordering:
        Strategy used to order edges for the frontier construction.
    stratum_mass_cutoff:
        Early-exit threshold in ``(0, 1]`` mirroring Algorithm 2's lines
        26–32: once the probability mass already delegated to sampling
        strata exceeds this fraction of the unresolved mass, further
        construction can barely tighten the bounds (most of the unresolved
        worlds will be sampled regardless), so the surviving layer is
        converted to strata and construction stops.  This keeps the
        approach competitive on dense graphs where the bounds do not
        tighten; set to 1.0 to disable.
    use_priority:
        Whether to order parent nodes by the heuristic ``h(n)`` before
        generating children, so that high-priority nodes survive the width
        cap (the paper's deleting procedure).  Disabling it keeps nodes in
        arrival order; used by the ablation benchmarks.
    rng:
        Seed / generator for the sampling procedure.

    Example
    -------
    >>> from repro.graph.generators import cycle_graph
    >>> bdd = S2BDD(cycle_graph(5, 0.9), terminals=[0, 2])
    >>> result = bdd.run(samples=1000)
    >>> result.exact  # a 5-cycle is far below any width cap
    True
    """

    def __init__(
        self,
        graph: UncertainGraph,
        terminals: Sequence[Vertex],
        *,
        max_width: int = 10_000,
        edge_ordering: EdgeOrdering = EdgeOrdering.BFS,
        stratum_mass_cutoff: float = 0.5,
        use_priority: bool = True,
        rng: RandomLike = None,
    ) -> None:
        check_positive_int(max_width, "max_width")
        if not 0.0 < stratum_mass_cutoff <= 1.0:
            raise ConfigurationError(
                f"stratum_mass_cutoff must lie in (0, 1], got {stratum_mass_cutoff}"
            )
        self._graph = graph
        self._terminals = graph.validate_terminals(terminals)
        self._k = len(self._terminals)
        self._max_width = max_width
        self._stratum_mass_cutoff = stratum_mass_cutoff
        self._use_priority = use_priority
        self._rng = resolve_rng(rng)
        self._plan: FrontierPlan = build_frontier_plan(
            graph,
            strategy=EdgeOrdering(edge_ordering),
            terminals=self._terminals,
            rng=self._rng,
        )
        self._transitions = TransitionTable(self._plan, self._terminals)
        # Flat-int state for the stratum-completion sampler, built lazily
        # on the first sampling run (exact diagrams never need it).
        self._completions: Optional[_StratumCompletionKernel] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def plan(self) -> FrontierPlan:
        """The frontier plan (edge order and per-layer frontiers) in use."""
        return self._plan

    def run(
        self,
        samples: int,
        *,
        estimator: EstimatorKind = EstimatorKind.MONTE_CARLO,
    ) -> S2BDDResult:
        """Estimate the reliability with a budget of ``samples`` samples.

        The budget is first reduced to ``s'`` according to Theorem 1 / 2
        using the bounds found during construction; only ``s'`` completions
        are then sampled from the strata.
        """
        check_non_negative_int(samples, "samples")
        estimator = EstimatorKind.coerce(estimator)

        construction = self._construct(samples=samples)
        bounds = construction.bounds
        strata = construction.strata

        samples_reduced = reduced_sample_count(
            samples, bounds.connected_mass, bounds.disconnected_mass
        )

        unresolved = sum(stratum.probability for stratum in strata)
        if not strata or unresolved <= _EXACT_MASS_TOLERANCE:
            reliability = bounds.clamp(bounds.connected_mass)
            return S2BDDResult(
                reliability=reliability,
                bounds=bounds,
                samples_requested=samples,
                samples_reduced=samples_reduced,
                samples_used=0,
                num_strata=len(strata),
                exact=True,
                peak_width=construction.peak_width,
                layers_processed=construction.layers_processed,
                deleted_probability_mass=construction.deleted_mass,
                estimator=estimator,
            )

        samples_used = max(1, samples_reduced)
        reliability = self._sample_strata(
            strata, unresolved, bounds, samples_used, estimator
        )
        return S2BDDResult(
            reliability=bounds.clamp(reliability),
            bounds=bounds,
            samples_requested=samples,
            samples_reduced=samples_reduced,
            samples_used=samples_used,
            num_strata=len(strata),
            exact=False,
            peak_width=construction.peak_width,
            layers_processed=construction.layers_processed,
            deleted_probability_mass=construction.deleted_mass,
            estimator=estimator,
        )

    def compute_bounds(self) -> ReliabilityBounds:
        """Construct the diagram and return only the certified bounds."""
        return self._construct(samples=0).bounds

    # ------------------------------------------------------------------
    # Construction (generating / merging / deleting procedures)
    # ------------------------------------------------------------------
    @dataclass
    class _Construction:
        bounds: ReliabilityBounds
        strata: List[Stratum]
        peak_width: int
        layers_processed: int
        deleted_mass: float

    def _construct(self, *, samples: int = 0) -> "S2BDD._Construction":
        """Build the S²BDD layer by layer.

        ``samples`` (the caller's budget ``s``) enables the early
        termination of Algorithm 2 (lines 26–32): once the unresolved
        probability mass is so small that the stratified budget would not
        allocate even a single sample to it, the remaining construction
        cannot change the estimate, so the surviving nodes are converted to
        strata and construction stops.  Pass 0 to disable (bounds-only
        runs).
        """
        plan = self._plan
        transitions = self._transitions
        k = self._k
        max_width = self._max_width

        if k <= 1:
            return S2BDD._Construction(ReliabilityBounds(1.0, 0.0), [], 0, 0, 0.0)
        if plan.num_edges == 0:
            # Two or more terminals but no edges: never connected.
            return S2BDD._Construction(ReliabilityBounds(0.0, 1.0), [], 0, 0, 0.0)

        connected_mass = KahanSum()
        disconnected_mass = KahanSum()
        strata: List[Stratum] = []
        deleted_mass = KahanSum()

        # A layer is a dict keyed by the Lemma-4.3 merge key; values are
        # [partition, counts, probability] (counts kept for the heuristic).
        current: Dict[Tuple, List] = {((), ()): [(), (), 1.0]}
        peak_width = 1
        layers_processed = 0

        for layer_index in range(plan.num_edges):
            if not current:
                break
            layers_processed = layer_index + 1
            edge = plan.edges[layer_index]
            probability_exist = edge.probability
            probability_missing = 1.0 - probability_exist

            parents = list(current.values())
            # Deletion can only happen if this layer is able to overflow the
            # width cap; only then is the (comparatively expensive) priority
            # ordering of the parents worthwhile.
            if self._use_priority and 2 * len(parents) > max_width:
                parents.sort(
                    key=lambda node: transitions.priority(
                        layer_index, node[0], node[1], node[2]
                    ),
                    reverse=True,
                )

            next_nodes: Dict[Tuple, List] = {}
            apply = transitions.apply
            for partition, counts, probability in parents:
                for exists, branch_probability in (
                    (False, probability_missing),
                    (True, probability_exist),
                ):
                    if branch_probability <= 0.0:
                        continue
                    child_probability = probability * branch_probability
                    sink, child_partition, child_counts, child_flags = apply(
                        layer_index, partition, counts, exists
                    )
                    if sink == CONNECTED:
                        connected_mass.add(child_probability)
                        continue
                    if sink == DISCONNECTED:
                        disconnected_mass.add(child_probability)
                        continue
                    key = (child_partition, child_flags)
                    node = next_nodes.get(key)
                    if node is not None:
                        node[2] += child_probability
                    elif len(next_nodes) < max_width:
                        next_nodes[key] = [child_partition, child_counts, child_probability]
                    else:
                        # Deleting procedure: the node becomes a stratum.
                        strata.append(
                            Stratum(
                                layer_index + 1,
                                child_partition,
                                child_counts,
                                child_probability,
                            )
                        )
                        deleted_mass.add(child_probability)
            current = next_nodes
            if len(current) > peak_width:
                peak_width = len(current)

            # Early termination (Algorithm 2, lines 26–32).  Two triggers:
            #
            # 1. the unresolved mass is so small that the stratified budget
            #    would not allocate a single sample to it — finishing the
            #    construction cannot change the estimate; or
            # 2. most of the unresolved mass has already been delegated to
            #    strata (dense graphs whose layer width blows past ``w``
            #    immediately): the bounds can improve by at most the mass
            #    still held by the surviving layer, so further layers cost
            #    construction time without reducing the sampling work.
            #
            # Both triggers require that at least one node has already been
            # deleted: as long as nothing was deleted the diagram is still
            # exact, and finishing it yields the exact reliability (the
            # paper's behaviour on small graphs).
            if samples > 0 and current and strata:
                unresolved = (
                    1.0 - connected_mass.value - disconnected_mass.value
                )
                if unresolved * samples < 1.0:
                    break
                if (
                    self._stratum_mass_cutoff < 1.0
                    and deleted_mass.value > self._stratum_mass_cutoff * unresolved
                ):
                    break

        # Nodes still alive after the loop (early termination, or the
        # defensive case of surviving the final layer) become strata so
        # their probability mass is still covered by sampling.
        for partition, counts, probability in current.values():
            strata.append(Stratum(layers_processed, partition, counts, probability))
            deleted_mass.add(probability)

        p_c = min(1.0, max(0.0, connected_mass.value))
        p_d = min(1.0, max(0.0, disconnected_mass.value))
        if p_c + p_d > 1.0:
            # Numerical guard: renormalise the tiny overshoot.
            p_d = max(0.0, 1.0 - p_c)
        bounds = ReliabilityBounds(p_c, p_d)
        return S2BDD._Construction(
            bounds=bounds,
            strata=strata,
            peak_width=peak_width,
            layers_processed=layers_processed,
            deleted_mass=deleted_mass.value,
        )

    # ------------------------------------------------------------------
    # Sampling procedure
    # ------------------------------------------------------------------
    def _sample_strata(
        self,
        strata: Sequence[Stratum],
        unresolved_mass: float,
        bounds: ReliabilityBounds,
        samples: int,
        estimator: EstimatorKind,
    ) -> float:
        """Estimate the unresolved contribution by sampling completions.

        Strata are sampled proportionally to their probability mass
        (self-weighted stratified sampling): a draw first picks a stratum
        with probability ``p_j / p_u`` and then completes its intermediate
        graph edge by edge.  The Monte Carlo aggregate is then
        ``p_c + p_u · mean(indicator)``; the Horvitz–Thompson aggregate
        weights distinct completions by their inclusion probability within
        the unresolved population.
        """
        rng = self._rng
        cumulative: List[float] = []
        running = 0.0
        for stratum in strata:
            running += stratum.probability
            cumulative.append(running)
        total = cumulative[-1]

        positives = 0
        ht_contributions: Dict[Tuple, Tuple[float, bool]] = {}
        want_ht = estimator is EstimatorKind.HORVITZ_THOMPSON

        for _ in range(samples):
            pick = rng.random() * total
            index = _bisect(cumulative, pick)
            stratum = strata[index]
            connected, log_conditional, chosen = self._sample_completion(
                stratum, rng, track_world=want_ht
            )
            if connected:
                positives += 1
            if want_ht:
                key = (index, chosen)
                if key not in ht_contributions:
                    log_world = _safe_log(stratum.probability) + log_conditional
                    ht_contributions[key] = (log_world, connected)

        if not want_ht:
            mean = positives / samples
            return bounds.connected_mass + unresolved_mass * mean

        # Horvitz–Thompson over the unresolved population: each distinct
        # world G was drawn with per-trial probability q = Pr[G] / p_u.
        estimate = 0.0
        log_unresolved = _safe_log(unresolved_mass)
        # Insertion order = sampling order of the seeded stream, identical
        # on every run; sorting here would *change* the historical float
        # summation order and break the pinned checksums.
        for log_world, connected in ht_contributions.values():  # reprolint: ok(ORD001)
            if not connected:
                continue
            log_q = log_world - log_unresolved
            ratio = _weight_over_inclusion(log_q, samples)
            # Contribution of world G is Pr[G] / π = p_u · q / π.
            estimate += unresolved_mass * ratio
        return bounds.connected_mass + min(unresolved_mass, max(0.0, estimate))

    def _sample_completion(
        self, stratum: Stratum, rng, *, track_world: bool = False
    ) -> Tuple[bool, float, Optional[frozenset]]:
        """Complete one possible world under ``stratum``.

        Returns ``(connected, log_conditional_probability, chosen_edges)``
        where ``chosen_edges`` is a frozenset of the remaining-edge ids that
        were sampled as existing (``None`` unless ``track_world`` is set;
        it is only needed by the Horvitz–Thompson estimator).

        Delegates to the flat-int completion kernel: one
        :class:`~repro.graph.compiled.IntUnionFind` is reset per sample
        instead of a dict-backed union-find being rebuilt, while the
        uniform stream (one draw per remaining edge, in plan order) and
        therefore every result stay bit-identical.
        """
        kernel = self._completions
        if kernel is None:
            kernel = self._completions = _StratumCompletionKernel(
                self._graph, self._plan, self._terminals
            )
        return kernel.sample(stratum, rng, track_world=track_world)


class _StratumCompletionKernel:
    """Per-diagram flat state for sampling stratum completions.

    Interns the graph's vertices to ``0..n-1`` once, mirrors the plan's
    edges into parallel index/probability lists, and keeps a single
    reusable :class:`~repro.graph.compiled.IntUnionFind` whose slots
    ``n + label`` act as the virtual per-component anchors the dict-based
    sampler used to build from ``("component", label)`` tuples.
    """

    __slots__ = (
        "_union_find",
        "_anchor_base",
        "_edge_u",
        "_edge_v",
        "_edge_probability",
        "_edge_id",
        "_num_edges",
        "_plan",
        "_terminals",
        "_vertex_index",
        "_frontier_cache",
        "_unseen_cache",
    )

    def __init__(self, graph: UncertainGraph, plan: FrontierPlan, terminals) -> None:
        self._vertex_index = {
            vertex: position for position, vertex in enumerate(graph.vertices())
        }
        self._anchor_base = len(self._vertex_index)
        self._union_find = IntUnionFind(self._anchor_base + plan.max_frontier_size())
        index = self._vertex_index
        self._edge_u = [index[edge.u] for edge in plan.edges]
        self._edge_v = [index[edge.v] for edge in plan.edges]
        self._edge_probability = [edge.probability for edge in plan.edges]
        self._edge_id = [edge.id for edge in plan.edges]
        self._num_edges = plan.num_edges
        self._plan = plan
        self._terminals = terminals
        # layer -> interned frontier / still-unseen terminal indices.
        self._frontier_cache: Dict[int, Tuple[int, ...]] = {}
        self._unseen_cache: Dict[int, Tuple[int, ...]] = {}

    def _frontier_indices(self, layer: int) -> Tuple[int, ...]:
        cached = self._frontier_cache.get(layer)
        if cached is None:
            index = self._vertex_index
            cached = tuple(index[vertex] for vertex in self._plan.frontiers[layer])
            self._frontier_cache[layer] = cached
        return cached

    def _unseen_terminal_indices(self, layer: int) -> Tuple[int, ...]:
        """Terminals whose edges are all still undecided (singletons)."""
        cached = self._unseen_cache.get(layer)
        if cached is None:
            plan = self._plan
            index = self._vertex_index
            cached = tuple(
                index[terminal]
                for terminal in self._terminals
                if plan.first_occurrence.get(terminal, plan.num_edges) >= layer
            )
            self._unseen_cache[layer] = cached
        return cached

    def sample(
        self, stratum: Stratum, rng, *, track_world: bool = False
    ) -> Tuple[bool, float, Optional[frozenset]]:
        """Draw one completion of ``stratum``; see ``S2BDD._sample_completion``."""
        layer = stratum.layer
        union_find = self._union_find
        union_find.reset()
        union = union_find.union
        base = self._anchor_base

        # Seed with the frontier partition; the anchor slot per component
        # carries the "this component holds terminals" role.
        for vertex, label in zip(self._frontier_indices(layer), stratum.partition):
            union(base + label, vertex)
        anchors = [
            base + label
            for label, count in enumerate(stratum.terminal_counts)
            if count > 0
        ]

        log_conditional = 0.0
        chosen: List[int] = []
        random_value = rng.random
        edge_u = self._edge_u
        edge_v = self._edge_v
        probabilities = self._edge_probability
        for position in range(layer, self._num_edges):
            if random_value() < probabilities[position]:
                if track_world:
                    log_conditional += _safe_log(probabilities[position])
                    chosen.append(self._edge_id[position])
                u = edge_u[position]
                v = edge_v[position]
                if u != v:
                    union(u, v)
            elif track_world:
                log_conditional += _safe_log(1.0 - probabilities[position])

        find = union_find.find
        roots = {find(anchor) for anchor in anchors}
        roots.update(find(terminal) for terminal in self._unseen_terminal_indices(layer))
        connected = len(roots) <= 1
        return connected, log_conditional, frozenset(chosen) if track_world else None


def _bisect(cumulative: Sequence[float], value: float) -> int:
    """Return the first index whose cumulative weight exceeds ``value``."""
    low, high = 0, len(cumulative) - 1
    while low < high:
        middle = (low + high) // 2
        if cumulative[middle] <= value:
            low = middle + 1
        else:
            high = middle
    return low


def _safe_log(value: float) -> float:
    """``log`` that maps non-positive values to ``-inf`` instead of raising."""
    if value <= 0.0:
        return float("-inf")
    return math.log(value)


def _weight_over_inclusion(log_q: float, samples: int) -> float:
    """Return ``q / π`` for ``π = 1 − (1 − q)^samples``, stably.

    For very small per-trial probabilities ``q`` the inclusion probability
    is approximately ``samples · q`` and the ratio tends to ``1 / samples``;
    computing it through logs avoids underflow for worlds whose probability
    is far below the smallest positive float.
    """
    if log_q == float("-inf"):
        return 0.0
    if log_q >= 0.0:
        return 1.0
    q = math.exp(log_q)
    if q < 1e-12:
        # π ≈ samples·q − C(samples,2)q² ⇒ q/π ≈ 1/samples · 1/(1 − (samples−1)q/2)
        return 1.0 / (samples * (1.0 - (samples - 1) * q / 2.0))
    pi = -math.expm1(samples * math.log1p(-q))
    if pi <= 0.0:
        return 0.0
    return q / pi
