"""The scalable-and-sampling BDD (S²BDD).

This is the paper's central data structure (Section 4.3).  Unlike an
ordinary BDD, the S²BDD

* keeps only a single layer of nodes plus the two sinks (earlier layers are
  never needed again),
* classifies intermediate graphs as connected / disconnected as early as
  possible (Lemmas 4.1 and 4.2), accumulating the bound masses ``p_c`` and
  ``p_d`` on the sinks,
* caps the layer width at ``w``; when a layer would exceed the cap, the
  lowest-priority nodes (heuristic ``h(n)``, Eq. 10) are *deleted* and
  turned into **sampling strata**, and
* finally samples completions of the strata — i.e. possible worlds that are
  *not* already covered by the bounds — which is exactly the requirement of
  the stratified estimator.

The resulting estimate is ``R̂ = p_c + Σ_j p_j · R̂_j`` where ``j`` ranges
over strata and ``R̂_j`` estimates the conditional reliability of stratum
``j``.  When the width cap is never hit, there are no strata and the result
is the exact reliability (the paper's "our approach computes the exact
answer for small-scale graphs").

Two construction back ends produce bit-identical diagrams:

* the **legacy dict path** (:meth:`S2BDD._construct`) keys each layer by
  nested ``(partition, flags)`` tuples and calls
  :meth:`~repro.core.state.TransitionTable.apply` per branch — it is the
  readable reference implementation;
* the **interned path** (:meth:`S2BDD._construct_interned`, the default)
  assigns each distinct layer state a dense integer id, keys the layer by a
  flat ``bytes`` string, inlines the transition over the precomputed
  per-layer index maps, and shares the no-merge child between the two
  branches of a parent.  It follows the exact float-operation order of the
  legacy path (same Kahan additions, same dedup accumulation, same
  priority-sort trigger and stability), so results match bit for bit.

The interned path additionally records a **replay** of the diagram — per
layer, the arc targets of every (parent, branch) pair — whenever the
diagram is exact and probability-independent in structure (no deletions,
no priority sort, every edge probability strictly inside ``(0, 1)``).
:meth:`S2BDD.resweep` pushes new edge probabilities through that recording
without re-deriving any state, which is what lets probability-only graph
deltas reuse a cached diagram's structure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.core.bounds import ReliabilityBounds
from repro.core.estimators import EstimatorKind
from repro.core.frontier import EdgeOrdering, FrontierPlan, build_frontier_plan
from repro.core.state import CONNECTED, DISCONNECTED, LIVE, NodeState, TransitionTable
from repro.core.stratified import reduced_sample_count
from repro.exceptions import ConfigurationError
from repro.graph.compiled import IntUnionFind
from repro.graph.uncertain_graph import UncertainGraph
from repro.utils.kahan import KahanSum
from repro.utils.rng import RandomLike, resolve_rng
from repro.utils.validation import check_non_negative_int, check_positive_int

__all__ = ["S2BDD", "S2BDDResult", "Stratum"]

Vertex = Hashable

#: Unresolved probability mass below which the result is treated as exact.
_EXACT_MASS_TOLERANCE = 1e-12

#: Replay arc codes for non-live children (live arcs are state ids >= 0).
_ARC_CONNECTED = -1
_ARC_DISCONNECTED = -2
_ARC_PRUNED = -3

#: Sentinel outcome for transitions that reach the 1-sink (interned path).
_CONNECTED_OUTCOME = object()

#: Largest frontier the byte-string interner can label: work arrays hold the
#: frontier plus at most two entering vertices, and ``bytes()`` needs every
#: component label to fit one byte.
_MAX_INTERNED_FRONTIER = 253


@dataclass(frozen=True)
class Stratum:
    """A deleted S²BDD node, i.e. one sampling subgroup.

    Attributes
    ----------
    layer:
        Number of edges already decided; the state refers to the frontier
        after that many edges.
    partition / terminal_counts:
        The node's frontier state (see :class:`repro.core.state.NodeState`).
    probability:
        Probability mass of the intermediate graph (``p_n``).
    """

    layer: int
    partition: Tuple[int, ...]
    terminal_counts: Tuple[int, ...]
    probability: float

    @property
    def state(self) -> NodeState:
        """The stratum's frontier state as a :class:`NodeState`."""
        return NodeState(self.partition, self.terminal_counts)


@dataclass
class S2BDDResult:
    """Outcome of one S²BDD reliability estimation."""

    reliability: float
    bounds: ReliabilityBounds
    samples_requested: int
    samples_reduced: int
    samples_used: int
    num_strata: int
    exact: bool
    peak_width: int
    layers_processed: int
    deleted_probability_mass: float
    estimator: EstimatorKind

    @property
    def lower_bound(self) -> float:
        """Certified lower bound ``p_c``."""
        return self.bounds.lower

    @property
    def upper_bound(self) -> float:
        """Certified upper bound ``1 − p_d``."""
        return self.bounds.upper


class S2BDD:
    """Scalable-and-sampling BDD estimator for one graph and terminal set.

    Parameters
    ----------
    graph:
        The uncertain graph.
    terminals:
        The terminal vertices whose mutual connectivity is measured.
    max_width:
        Width cap ``w``: the maximum number of nodes kept per layer.
    edge_ordering:
        Strategy used to order edges for the frontier construction.
    stratum_mass_cutoff:
        Early-exit threshold in ``(0, 1]`` mirroring Algorithm 2's lines
        26–32: once the probability mass already delegated to sampling
        strata exceeds this fraction of the unresolved mass, further
        construction can barely tighten the bounds (most of the unresolved
        worlds will be sampled regardless), so the surviving layer is
        converted to strata and construction stops.  This keeps the
        approach competitive on dense graphs where the bounds do not
        tighten; set to 1.0 to disable.
    use_priority:
        Whether to order parent nodes by the heuristic ``h(n)`` before
        generating children, so that high-priority nodes survive the width
        cap (the paper's deleting procedure).  Disabling it keeps nodes in
        arrival order; used by the ablation benchmarks.
    use_interned:
        Whether construction may use the interned flat-int path (the
        default).  The legacy dict path stays available as the parity
        reference; both produce bit-identical results.  Graphs whose
        frontier exceeds the one-byte label space silently fall back to
        the legacy path.
    rng:
        Seed / generator for the sampling procedure.

    Example
    -------
    >>> from repro.graph.generators import cycle_graph
    >>> bdd = S2BDD(cycle_graph(5, 0.9), terminals=[0, 2])
    >>> result = bdd.run(samples=1000)
    >>> result.exact  # a 5-cycle is far below any width cap
    True
    """

    def __init__(
        self,
        graph: UncertainGraph,
        terminals: Sequence[Vertex],
        *,
        max_width: int = 10_000,
        edge_ordering: EdgeOrdering = EdgeOrdering.BFS,
        stratum_mass_cutoff: float = 0.5,
        use_priority: bool = True,
        use_interned: bool = True,
        rng: RandomLike = None,
    ) -> None:
        check_positive_int(max_width, "max_width")
        if not 0.0 < stratum_mass_cutoff <= 1.0:
            raise ConfigurationError(
                f"stratum_mass_cutoff must lie in (0, 1], got {stratum_mass_cutoff}"
            )
        self._graph = graph
        self._terminals = graph.validate_terminals(terminals)
        self._k = len(self._terminals)
        self._max_width = max_width
        self._stratum_mass_cutoff = stratum_mass_cutoff
        self._use_priority = use_priority
        self._rng = resolve_rng(rng)
        self._plan: FrontierPlan = build_frontier_plan(
            graph,
            strategy=EdgeOrdering(edge_ordering),
            terminals=self._terminals,
            rng=self._rng,
        )
        self._transitions = TransitionTable(self._plan, self._terminals)
        self._interned = (
            bool(use_interned)
            and self._plan.max_frontier_size() <= _MAX_INTERNED_FRONTIER
        )
        # Flat-int state for the stratum-completion sampler, built lazily
        # on the first sampling run (exact diagrams never need it).
        self._completions: Optional[_StratumCompletionKernel] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def plan(self) -> FrontierPlan:
        """The frontier plan (edge order and per-layer frontiers) in use."""
        return self._plan

    @property
    def interned(self) -> bool:
        """Whether construction runs on the interned flat-int path."""
        return self._interned

    def run(
        self,
        samples: int,
        *,
        estimator: EstimatorKind = EstimatorKind.MONTE_CARLO,
        rng: RandomLike = None,
        construction: Optional["S2BDD._Construction"] = None,
    ) -> S2BDDResult:
        """Estimate the reliability with a budget of ``samples`` samples.

        The budget is first reduced to ``s'`` according to Theorem 1 / 2
        using the bounds found during construction; only ``s'`` completions
        are then sampled from the strata.

        ``construction`` lets callers reuse an already-built diagram (for
        example one answered from the constructed-diagram cache); ``rng``
        overrides the sampling stream per call so one cached diagram can
        serve many queries with independent seeds.  Both default to the
        historical behaviour (construct now, sample from the instance rng).
        """
        check_non_negative_int(samples, "samples")
        estimator = EstimatorKind.coerce(estimator)

        sampling_rng = self._rng if rng is None else resolve_rng(rng)
        if construction is None:
            construction = self.construct(samples)
        bounds = construction.bounds
        strata = construction.strata

        samples_reduced = reduced_sample_count(
            samples, bounds.connected_mass, bounds.disconnected_mass
        )

        unresolved = sum(stratum.probability for stratum in strata)
        if not strata or unresolved <= _EXACT_MASS_TOLERANCE:
            reliability = bounds.clamp(bounds.connected_mass)
            return S2BDDResult(
                reliability=reliability,
                bounds=bounds,
                samples_requested=samples,
                samples_reduced=samples_reduced,
                samples_used=0,
                num_strata=len(strata),
                exact=True,
                peak_width=construction.peak_width,
                layers_processed=construction.layers_processed,
                deleted_probability_mass=construction.deleted_mass,
                estimator=estimator,
            )

        samples_used = max(1, samples_reduced)
        reliability = self._sample_strata(
            strata, unresolved, bounds, samples_used, estimator, sampling_rng
        )
        return S2BDDResult(
            reliability=bounds.clamp(reliability),
            bounds=bounds,
            samples_requested=samples,
            samples_reduced=samples_reduced,
            samples_used=samples_used,
            num_strata=len(strata),
            exact=False,
            peak_width=construction.peak_width,
            layers_processed=construction.layers_processed,
            deleted_probability_mass=construction.deleted_mass,
            estimator=estimator,
        )

    def compute_bounds(self) -> ReliabilityBounds:
        """Construct the diagram and return only the certified bounds."""
        return self.construct(0).bounds

    def construct(self, samples: int = 0) -> "S2BDD._Construction":
        """Build the diagram and return the construction outcome.

        Dispatches to the interned flat-int path or the legacy dict path
        depending on how the instance was configured; the two are
        bit-identical.  The returned object can be passed back to
        :meth:`run` any number of times, which is how one constructed
        diagram amortises over a whole query workload.
        """
        check_non_negative_int(samples, "samples")
        if self._interned:
            return self._construct_interned(samples=samples)
        return self._construct(samples=samples)

    def resweep(
        self,
        construction: "S2BDD._Construction",
        probabilities: Sequence[float],
    ) -> "S2BDD._Construction":
        """Re-evaluate a recorded diagram under new edge probabilities.

        ``probabilities`` lists the new existence probability of each plan
        edge (``self.plan.edges`` order) and must all lie strictly inside
        ``(0, 1)``.  The diagram *structure* — which child every (parent,
        branch) pair reaches — is probability-independent for a replayable
        construction, so the sweep only pushes masses along the recorded
        arcs, in exactly the float-operation order a fresh construction
        would use.  The result is therefore bit-identical to rebuilding
        from scratch, at a fraction of the cost.

        Raises :class:`ValueError` when the construction carries no replay
        recording (``replay_safe`` is ``False``).
        """
        replay = construction.replay
        if not construction.replay_safe or replay is None:
            raise ValueError(
                "construction is not replayable; rebuild the diagram instead"
            )
        if len(probabilities) < len(replay):
            raise ValueError(
                f"need {len(replay)} per-layer probabilities, "
                f"got {len(probabilities)}"
            )
        for probability in probabilities:
            if not 0.0 < probability < 1.0:
                raise ValueError(
                    f"re-sweep probabilities must lie strictly inside (0, 1), "
                    f"got {probability!r}; a boundary probability changes the "
                    f"diagram structure, so rebuild instead"
                )
        connected_mass = KahanSum()
        disconnected_mass = KahanSum()
        connected_add = connected_mass.add
        disconnected_add = disconnected_mass.add

        masses: List[float] = [1.0]
        for layer_index, (false_arcs, true_arcs, next_width) in enumerate(replay):
            probability_exist = probabilities[layer_index]
            probability_missing = 1.0 - probability_exist
            next_masses = [0.0] * next_width
            for sid, probability in enumerate(masses):
                arc = false_arcs[sid]
                child_probability = probability * probability_missing
                if arc >= 0:
                    next_masses[arc] += child_probability
                elif arc == _ARC_CONNECTED:
                    connected_add(child_probability)
                else:
                    disconnected_add(child_probability)
                arc = true_arcs[sid]
                child_probability = probability * probability_exist
                if arc >= 0:
                    next_masses[arc] += child_probability
                elif arc == _ARC_CONNECTED:
                    connected_add(child_probability)
                else:
                    disconnected_add(child_probability)
            masses = next_masses

        p_c = min(1.0, max(0.0, connected_mass.value))
        p_d = min(1.0, max(0.0, disconnected_mass.value))
        if p_c + p_d > 1.0:
            p_d = max(0.0, 1.0 - p_c)
        return S2BDD._Construction(
            bounds=ReliabilityBounds(p_c, p_d),
            strata=[],
            peak_width=construction.peak_width,
            layers_processed=construction.layers_processed,
            deleted_mass=0.0,
            replay=replay,
            replay_safe=True,
        )

    # ------------------------------------------------------------------
    # Construction (generating / merging / deleting procedures)
    # ------------------------------------------------------------------
    @dataclass
    class _Construction:
        bounds: ReliabilityBounds
        strata: List[Stratum]
        peak_width: int
        layers_processed: int
        deleted_mass: float
        # Per layer, the arc targets of every (parent, branch) pair plus the
        # next layer's live width; only recorded by the interned path, and
        # only kept when the structure is probability-independent (exact, no
        # priority sort, every edge probability strictly inside (0, 1)).
        replay: Optional[List[Tuple[List[int], List[int], int]]] = None
        replay_safe: bool = False

    def _construct(self, *, samples: int = 0) -> "S2BDD._Construction":
        """Build the S²BDD layer by layer.

        ``samples`` (the caller's budget ``s``) enables the early
        termination of Algorithm 2 (lines 26–32): once the unresolved
        probability mass is so small that the stratified budget would not
        allocate even a single sample to it, the remaining construction
        cannot change the estimate, so the surviving nodes are converted to
        strata and construction stops.  Pass 0 to disable (bounds-only
        runs).
        """
        plan = self._plan
        transitions = self._transitions
        k = self._k
        max_width = self._max_width

        if k <= 1:
            return S2BDD._Construction(ReliabilityBounds(1.0, 0.0), [], 0, 0, 0.0)
        if plan.num_edges == 0:
            # Two or more terminals but no edges: never connected.
            return S2BDD._Construction(ReliabilityBounds(0.0, 1.0), [], 0, 0, 0.0)

        connected_mass = KahanSum()
        disconnected_mass = KahanSum()
        strata: List[Stratum] = []
        deleted_mass = KahanSum()

        # A layer is a dict keyed by the Lemma-4.3 merge key; values are
        # [partition, counts, probability] (counts kept for the heuristic).
        current: Dict[Tuple, List] = {((), ()): [(), (), 1.0]}
        peak_width = 1
        layers_processed = 0

        for layer_index in range(plan.num_edges):
            if not current:
                break
            layers_processed = layer_index + 1
            edge = plan.edges[layer_index]
            probability_exist = edge.probability
            probability_missing = 1.0 - probability_exist

            parents = list(current.values())
            # Deletion can only happen if this layer is able to overflow the
            # width cap; only then is the (comparatively expensive) priority
            # ordering of the parents worthwhile.
            if self._use_priority and 2 * len(parents) > max_width:
                parents.sort(
                    key=lambda node: transitions.priority(
                        layer_index, node[0], node[1], node[2]
                    ),
                    reverse=True,
                )

            next_nodes: Dict[Tuple, List] = {}
            apply = transitions.apply
            for partition, counts, probability in parents:
                for exists, branch_probability in (
                    (False, probability_missing),
                    (True, probability_exist),
                ):
                    if branch_probability <= 0.0:
                        continue
                    child_probability = probability * branch_probability
                    sink, child_partition, child_counts, child_flags = apply(
                        layer_index, partition, counts, exists
                    )
                    if sink == CONNECTED:
                        connected_mass.add(child_probability)
                        continue
                    if sink == DISCONNECTED:
                        disconnected_mass.add(child_probability)
                        continue
                    key = (child_partition, child_flags)
                    node = next_nodes.get(key)
                    if node is not None:
                        node[2] += child_probability
                    elif len(next_nodes) < max_width:
                        next_nodes[key] = [child_partition, child_counts, child_probability]
                    else:
                        # Deleting procedure: the node becomes a stratum.
                        strata.append(
                            Stratum(
                                layer_index + 1,
                                child_partition,
                                child_counts,
                                child_probability,
                            )
                        )
                        deleted_mass.add(child_probability)
            current = next_nodes
            if len(current) > peak_width:
                peak_width = len(current)

            # Early termination (Algorithm 2, lines 26–32).  Two triggers:
            #
            # 1. the unresolved mass is so small that the stratified budget
            #    would not allocate a single sample to it — finishing the
            #    construction cannot change the estimate; or
            # 2. most of the unresolved mass has already been delegated to
            #    strata (dense graphs whose layer width blows past ``w``
            #    immediately): the bounds can improve by at most the mass
            #    still held by the surviving layer, so further layers cost
            #    construction time without reducing the sampling work.
            #
            # Both triggers require that at least one node has already been
            # deleted: as long as nothing was deleted the diagram is still
            # exact, and finishing it yields the exact reliability (the
            # paper's behaviour on small graphs).
            if samples > 0 and current and strata:
                unresolved = (
                    1.0 - connected_mass.value - disconnected_mass.value
                )
                if unresolved * samples < 1.0:
                    break
                if (
                    self._stratum_mass_cutoff < 1.0
                    and deleted_mass.value > self._stratum_mass_cutoff * unresolved
                ):
                    break

        # Nodes still alive after the loop (early termination, or the
        # defensive case of surviving the final layer) become strata so
        # their probability mass is still covered by sampling.
        for partition, counts, probability in current.values():
            strata.append(Stratum(layers_processed, partition, counts, probability))
            deleted_mass.add(probability)

        p_c = min(1.0, max(0.0, connected_mass.value))
        p_d = min(1.0, max(0.0, disconnected_mass.value))
        if p_c + p_d > 1.0:
            # Numerical guard: renormalise the tiny overshoot.
            p_d = max(0.0, 1.0 - p_c)
        bounds = ReliabilityBounds(p_c, p_d)
        return S2BDD._Construction(
            bounds=bounds,
            strata=strata,
            peak_width=peak_width,
            layers_processed=layers_processed,
            deleted_mass=deleted_mass.value,
        )

    def _construct_interned(self, *, samples: int = 0) -> "S2BDD._Construction":
        """Interned flat-int construction, bit-identical to :meth:`_construct`.

        Layer states live in parallel lists indexed by a dense state id:
        ``parts[sid]`` / ``cnts[sid]`` are the partition and component
        counts as plain int lists, ``masses[sid]`` the accumulated
        probability, ``keys[sid]`` the flat ``bytes`` merge key (partition
        labels followed by the per-component terminal flags; both ranges
        have a layer-fixed length, so no separator is needed).  The
        transition is inlined over the precomputed per-layer index maps.
        Two fused per-layer closures produce children in a single pass:
        ``finish`` for the no-merge child — shared between the False branch
        and a True branch that joins nothing, computed lazily once per
        parent — and ``finish_merge``, which reads the merge through a
        label indirection instead of materialising the rewritten partition
        and counts first.

        Bit-identity with the legacy path holds because every float
        operation happens in the same order: parents are visited in state-id
        (= dict insertion) order, the priority sort fires on the same
        trigger and is equally stable, each parent still emits the False
        branch before the True branch, duplicate children accumulate via
        the same ``+=`` sequence, and the Kahan sums see the same adds.
        """
        plan = self._plan
        transitions = self._transitions
        k = self._k
        max_width = self._max_width
        cutoff = self._stratum_mass_cutoff
        use_priority = self._use_priority

        if k <= 1:
            return S2BDD._Construction(ReliabilityBounds(1.0, 0.0), [], 0, 0, 0.0)
        if plan.num_edges == 0:
            # Two or more terminals but no edges: never connected.
            return S2BDD._Construction(ReliabilityBounds(0.0, 1.0), [], 0, 0, 0.0)

        connected_mass = KahanSum()
        disconnected_mass = KahanSum()
        deleted_mass = KahanSum()
        connected_add = connected_mass.add
        disconnected_add = disconnected_mass.add
        deleted_add = deleted_mass.add
        strata: List[Stratum] = []

        # Layer 0: the single root state (empty frontier, no components).
        parts: List[List[int]] = [[]]
        cnts: List[List[int]] = [[]]
        masses: List[float] = [1.0]
        keys: List[bytes] = [b""]
        peak_width = 1
        layers_processed = 0

        replay: List[Tuple[List[int], List[int], int]] = []
        replay_ok = True

        for layer_index in range(plan.num_edges):
            width = len(masses)
            if width == 0:
                break
            layers_processed = layer_index + 1
            edge = plan.edges[layer_index]
            probability_exist = edge.probability
            probability_missing = 1.0 - probability_exist
            next_layer = layer_index + 1

            context = transitions.layer(layer_index)
            u_position = context.u_position
            v_position = context.v_position
            merge_allowed = not context.is_loop
            entering_terminal = context.entering_terminal
            num_entering = len(entering_terminal)
            entering_counts = list(entering_terminal)
            after_positions = context.after_positions
            leaving_positions = context.leaving_positions
            identity = context.identity

            def finish(
                labels: List[int],
                lcounts: List[int],
                _after: Tuple[int, ...] = after_positions,
                _leaving: Tuple[int, ...] = leaving_positions,
            ) -> Optional[Tuple[bytes, List[int], List[int]]]:
                # 0-sink: only a component containing a retiring endpoint of
                # the processed edge can lose its last frontier vertex here.
                for position in _leaving:
                    label = labels[position]
                    if lcounts[label] <= 0:
                        continue
                    for after_position in _after:
                        if labels[after_position] == label:
                            break
                    else:
                        return None
                # Canonicalise over the next frontier.
                relabel = [-1] * len(lcounts)
                child_partition: List[int] = []
                child_counts: List[int] = []
                child_flags: List[int] = []
                next_label = 0
                for position in _after:
                    label = labels[position]
                    canonical = relabel[label]
                    if canonical < 0:
                        canonical = next_label
                        relabel[label] = canonical
                        next_label += 1
                        count = lcounts[label]
                        child_counts.append(count)
                        child_flags.append(1 if count else 0)
                    child_partition.append(canonical)
                return (
                    bytes(child_partition + child_flags),
                    child_partition,
                    child_counts,
                )

            def finish_merge(
                labels: List[int],
                lcounts: List[int],
                label_u: int,
                label_v: int,
                merged: int,
                _after: Tuple[int, ...] = after_positions,
                _leaving: Tuple[int, ...] = leaving_positions,
            ) -> Optional[Tuple[bytes, List[int], List[int]]]:
                # Same as ``finish`` over the state with label_v rewritten to
                # label_u and the merged component count, but reading through
                # the indirection instead of copying the arrays first.
                for position in _leaving:
                    label = labels[position]
                    if label == label_v:
                        label = label_u
                    count = merged if label == label_u else lcounts[label]
                    if count <= 0:
                        continue
                    for after_position in _after:
                        after_label = labels[after_position]
                        if after_label == label_v:
                            after_label = label_u
                        if after_label == label:
                            break
                    else:
                        return None
                relabel = [-1] * len(lcounts)
                child_partition: List[int] = []
                child_counts: List[int] = []
                child_flags: List[int] = []
                next_label = 0
                for position in _after:
                    label = labels[position]
                    if label == label_v:
                        label = label_u
                    canonical = relabel[label]
                    if canonical < 0:
                        canonical = next_label
                        relabel[label] = canonical
                        next_label += 1
                        count = merged if label == label_u else lcounts[label]
                        child_counts.append(count)
                        child_flags.append(1 if count else 0)
                    child_partition.append(canonical)
                return (
                    bytes(child_partition + child_flags),
                    child_partition,
                    child_counts,
                )

            order: Sequence[int] = range(width)
            # Deletion can only happen if this layer is able to overflow the
            # width cap; only then is the (comparatively expensive) priority
            # ordering of the parents worthwhile.
            if use_priority and 2 * width > max_width:
                priority = transitions.priority
                order = sorted(
                    range(width),
                    key=lambda sid: priority(
                        layer_index, parts[sid], cnts[sid], masses[sid]
                    ),
                    reverse=True,
                )
                replay_ok = False

            next_index: Dict[bytes, int] = {}
            next_parts: List[List[int]] = []
            next_cnts: List[List[int]] = []
            next_masses: List[float] = []
            next_keys: List[bytes] = []
            next_width = 0
            false_arcs: List[int] = []
            true_arcs: List[int] = []

            for sid in order:
                partition = parts[sid]
                counts = cnts[sid]
                probability = masses[sid]

                # Work state: frontier-before labels plus entering singletons.
                if num_entering == 0:
                    ext_partition = partition
                    ext_counts = counts
                else:
                    base = len(counts)
                    if num_entering == 1:
                        ext_partition = partition + [base]
                    else:
                        ext_partition = partition + [base, base + 1]
                    ext_counts = counts + entering_counts

                # The no-merge child is shared by the False branch and a
                # True branch that joins nothing; compute it lazily, once.
                shared_ready = False
                shared: object = None

                # --- False branch (edge absent) -----------------------
                if probability_missing > 0.0:
                    if identity:
                        shared = (keys[sid], partition, counts)
                    else:
                        shared = finish(ext_partition, ext_counts)
                    shared_ready = True
                    outcome = shared
                    child_probability = probability * probability_missing
                    if type(outcome) is tuple:
                        child_key = outcome[0]
                        child_id = next_index.get(child_key)
                        if child_id is not None:
                            next_masses[child_id] += child_probability
                            false_arcs.append(child_id)
                        elif next_width < max_width:
                            next_index[child_key] = next_width
                            next_parts.append(outcome[1])
                            next_cnts.append(outcome[2])
                            next_masses.append(child_probability)
                            next_keys.append(child_key)
                            false_arcs.append(next_width)
                            next_width += 1
                        else:
                            strata.append(
                                Stratum(
                                    next_layer,
                                    tuple(outcome[1]),
                                    tuple(outcome[2]),
                                    child_probability,
                                )
                            )
                            deleted_add(child_probability)
                            replay_ok = False
                            false_arcs.append(_ARC_PRUNED)
                    elif outcome is None:
                        disconnected_add(child_probability)
                        false_arcs.append(_ARC_DISCONNECTED)
                    else:
                        connected_add(child_probability)
                        false_arcs.append(_ARC_CONNECTED)
                else:
                    replay_ok = False
                    false_arcs.append(_ARC_PRUNED)

                # --- True branch (edge present) -----------------------
                if probability_exist > 0.0:
                    child_probability = probability * probability_exist
                    if merge_allowed:
                        label_u = ext_partition[u_position]
                        label_v = ext_partition[v_position]
                    else:
                        label_u = label_v = 0
                    if label_u != label_v:
                        merged = ext_counts[label_u] + ext_counts[label_v]
                        if merged >= k:
                            # 1-sink: the merged component holds every
                            # terminal (the only count that changed).
                            outcome = _CONNECTED_OUTCOME
                        else:
                            outcome = finish_merge(
                                ext_partition,
                                ext_counts,
                                label_u,
                                label_v,
                                merged,
                            )
                    else:
                        if not shared_ready:
                            if identity:
                                shared = (keys[sid], partition, counts)
                            else:
                                shared = finish(ext_partition, ext_counts)
                            shared_ready = True
                        outcome = shared
                    if type(outcome) is tuple:
                        child_key = outcome[0]
                        child_id = next_index.get(child_key)
                        if child_id is not None:
                            next_masses[child_id] += child_probability
                            true_arcs.append(child_id)
                        elif next_width < max_width:
                            next_index[child_key] = next_width
                            next_parts.append(outcome[1])
                            next_cnts.append(outcome[2])
                            next_masses.append(child_probability)
                            next_keys.append(child_key)
                            true_arcs.append(next_width)
                            next_width += 1
                        else:
                            strata.append(
                                Stratum(
                                    next_layer,
                                    tuple(outcome[1]),
                                    tuple(outcome[2]),
                                    child_probability,
                                )
                            )
                            deleted_add(child_probability)
                            replay_ok = False
                            true_arcs.append(_ARC_PRUNED)
                    elif outcome is None:
                        disconnected_add(child_probability)
                        true_arcs.append(_ARC_DISCONNECTED)
                    else:
                        connected_add(child_probability)
                        true_arcs.append(_ARC_CONNECTED)
                else:
                    replay_ok = False
                    true_arcs.append(_ARC_PRUNED)

            parts = next_parts
            cnts = next_cnts
            masses = next_masses
            keys = next_keys
            if next_width > peak_width:
                peak_width = next_width
            replay.append((false_arcs, true_arcs, next_width))

            # Early termination (Algorithm 2, lines 26–32); see the legacy
            # path for the full rationale.  Requires at least one deleted
            # node, so it never fires on a replayable construction.
            if samples > 0 and next_width and strata:
                unresolved = 1.0 - connected_mass.value - disconnected_mass.value
                if unresolved * samples < 1.0:
                    break
                if cutoff < 1.0 and deleted_mass.value > cutoff * unresolved:
                    break

        # Nodes still alive after the loop become strata so their mass is
        # still covered by sampling (mirrors the legacy path).
        for sid in range(len(masses)):
            probability = masses[sid]
            strata.append(
                Stratum(
                    layers_processed,
                    tuple(parts[sid]),
                    tuple(cnts[sid]),
                    probability,
                )
            )
            deleted_add(probability)

        p_c = min(1.0, max(0.0, connected_mass.value))
        p_d = min(1.0, max(0.0, disconnected_mass.value))
        if p_c + p_d > 1.0:
            # Numerical guard: renormalise the tiny overshoot.
            p_d = max(0.0, 1.0 - p_c)
        bounds = ReliabilityBounds(p_c, p_d)
        replay_safe = replay_ok and not strata
        return S2BDD._Construction(
            bounds=bounds,
            strata=strata,
            peak_width=peak_width,
            layers_processed=layers_processed,
            deleted_mass=deleted_mass.value,
            replay=replay if replay_safe else None,
            replay_safe=replay_safe,
        )

    # ------------------------------------------------------------------
    # Sampling procedure
    # ------------------------------------------------------------------
    def _sample_strata(
        self,
        strata: Sequence[Stratum],
        unresolved_mass: float,
        bounds: ReliabilityBounds,
        samples: int,
        estimator: EstimatorKind,
        rng,
    ) -> float:
        """Estimate the unresolved contribution by sampling completions.

        Strata are sampled proportionally to their probability mass
        (self-weighted stratified sampling): a draw first picks a stratum
        with probability ``p_j / p_u`` and then completes its intermediate
        graph edge by edge.  The Monte Carlo aggregate is then
        ``p_c + p_u · mean(indicator)``; the Horvitz–Thompson aggregate
        weights distinct completions by their inclusion probability within
        the unresolved population.
        """
        cumulative: List[float] = []
        running = 0.0
        for stratum in strata:
            running += stratum.probability
            cumulative.append(running)
        total = cumulative[-1]

        positives = 0
        ht_contributions: Dict[Tuple, Tuple[float, bool]] = {}
        want_ht = estimator is EstimatorKind.HORVITZ_THOMPSON

        for _ in range(samples):
            pick = rng.random() * total
            index = _bisect(cumulative, pick)
            stratum = strata[index]
            connected, log_conditional, chosen = self._sample_completion(
                stratum, rng, track_world=want_ht
            )
            if connected:
                positives += 1
            if want_ht:
                key = (index, chosen)
                if key not in ht_contributions:
                    log_world = _safe_log(stratum.probability) + log_conditional
                    ht_contributions[key] = (log_world, connected)

        if not want_ht:
            mean = positives / samples
            return bounds.connected_mass + unresolved_mass * mean

        # Horvitz–Thompson over the unresolved population: each distinct
        # world G was drawn with per-trial probability q = Pr[G] / p_u.
        estimate = 0.0
        log_unresolved = _safe_log(unresolved_mass)
        # Insertion order = sampling order of the seeded stream, identical
        # on every run; sorting here would *change* the historical float
        # summation order and break the pinned checksums.
        for log_world, connected in ht_contributions.values():  # reprolint: ok(ORD001)
            if not connected:
                continue
            log_q = log_world - log_unresolved
            ratio = _weight_over_inclusion(log_q, samples)
            # Contribution of world G is Pr[G] / π = p_u · q / π.
            estimate += unresolved_mass * ratio
        return bounds.connected_mass + min(unresolved_mass, max(0.0, estimate))

    def _sample_completion(
        self, stratum: Stratum, rng, *, track_world: bool = False
    ) -> Tuple[bool, float, Optional[frozenset]]:
        """Complete one possible world under ``stratum``.

        Returns ``(connected, log_conditional_probability, chosen_edges)``
        where ``chosen_edges`` is a frozenset of the remaining-edge ids that
        were sampled as existing (``None`` unless ``track_world`` is set;
        it is only needed by the Horvitz–Thompson estimator).

        Delegates to the flat-int completion kernel: one
        :class:`~repro.graph.compiled.IntUnionFind` is reset per sample
        instead of a dict-backed union-find being rebuilt, while the
        uniform stream (one draw per remaining edge, in plan order) and
        therefore every result stay bit-identical.
        """
        kernel = self._completions
        if kernel is None:
            kernel = self._completions = _StratumCompletionKernel(
                self._graph, self._plan, self._terminals
            )
        return kernel.sample(stratum, rng, track_world=track_world)


class _StratumCompletionKernel:
    """Per-diagram flat state for sampling stratum completions.

    Interns the graph's vertices to ``0..n-1`` once, mirrors the plan's
    edges into parallel index/probability lists, and keeps a single
    reusable :class:`~repro.graph.compiled.IntUnionFind` whose slots
    ``n + label`` act as the virtual per-component anchors the dict-based
    sampler used to build from ``("component", label)`` tuples.
    """

    __slots__ = (
        "_union_find",
        "_anchor_base",
        "_edge_u",
        "_edge_v",
        "_edge_probability",
        "_edge_id",
        "_num_edges",
        "_plan",
        "_terminals",
        "_vertex_index",
        "_frontier_cache",
        "_unseen_cache",
    )

    def __init__(self, graph: UncertainGraph, plan: FrontierPlan, terminals) -> None:
        self._vertex_index = {
            vertex: position for position, vertex in enumerate(graph.vertices())
        }
        self._anchor_base = len(self._vertex_index)
        self._union_find = IntUnionFind(self._anchor_base + plan.max_frontier_size())
        index = self._vertex_index
        self._edge_u = [index[edge.u] for edge in plan.edges]
        self._edge_v = [index[edge.v] for edge in plan.edges]
        self._edge_probability = [edge.probability for edge in plan.edges]
        self._edge_id = [edge.id for edge in plan.edges]
        self._num_edges = plan.num_edges
        self._plan = plan
        self._terminals = terminals
        # layer -> interned frontier / still-unseen terminal indices.
        self._frontier_cache: Dict[int, Tuple[int, ...]] = {}
        self._unseen_cache: Dict[int, Tuple[int, ...]] = {}

    def _frontier_indices(self, layer: int) -> Tuple[int, ...]:
        cached = self._frontier_cache.get(layer)
        if cached is None:
            index = self._vertex_index
            cached = tuple(index[vertex] for vertex in self._plan.frontiers[layer])
            self._frontier_cache[layer] = cached
        return cached

    def _unseen_terminal_indices(self, layer: int) -> Tuple[int, ...]:
        """Terminals whose edges are all still undecided (singletons)."""
        cached = self._unseen_cache.get(layer)
        if cached is None:
            plan = self._plan
            index = self._vertex_index
            cached = tuple(
                index[terminal]
                for terminal in self._terminals
                if plan.first_occurrence.get(terminal, plan.num_edges) >= layer
            )
            self._unseen_cache[layer] = cached
        return cached

    def sample(
        self, stratum: Stratum, rng, *, track_world: bool = False
    ) -> Tuple[bool, float, Optional[frozenset]]:
        """Draw one completion of ``stratum``; see ``S2BDD._sample_completion``."""
        layer = stratum.layer
        union_find = self._union_find
        union_find.reset()
        union = union_find.union
        base = self._anchor_base

        # Seed with the frontier partition; the anchor slot per component
        # carries the "this component holds terminals" role.
        for vertex, label in zip(self._frontier_indices(layer), stratum.partition):
            union(base + label, vertex)
        anchors = [
            base + label
            for label, count in enumerate(stratum.terminal_counts)
            if count > 0
        ]

        log_conditional = 0.0
        chosen: List[int] = []
        random_value = rng.random
        edge_u = self._edge_u
        edge_v = self._edge_v
        probabilities = self._edge_probability
        for position in range(layer, self._num_edges):
            if random_value() < probabilities[position]:
                if track_world:
                    log_conditional += _safe_log(probabilities[position])
                    chosen.append(self._edge_id[position])
                u = edge_u[position]
                v = edge_v[position]
                if u != v:
                    union(u, v)
            elif track_world:
                log_conditional += _safe_log(1.0 - probabilities[position])

        find = union_find.find
        roots = {find(anchor) for anchor in anchors}
        roots.update(find(terminal) for terminal in self._unseen_terminal_indices(layer))
        connected = len(roots) <= 1
        return connected, log_conditional, frozenset(chosen) if track_world else None


def _bisect(cumulative: Sequence[float], value: float) -> int:
    """Return the first index whose cumulative weight exceeds ``value``."""
    low, high = 0, len(cumulative) - 1
    while low < high:
        middle = (low + high) // 2
        if cumulative[middle] <= value:
            low = middle + 1
        else:
            high = middle
    return low


def _safe_log(value: float) -> float:
    """``log`` that maps non-positive values to ``-inf`` instead of raising."""
    if value <= 0.0:
        return float("-inf")
    return math.log(value)


def _weight_over_inclusion(log_q: float, samples: int) -> float:
    """Return ``q / π`` for ``π = 1 − (1 − q)^samples``, stably.

    For very small per-trial probabilities ``q`` the inclusion probability
    is approximately ``samples · q`` and the ratio tends to ``1 / samples``;
    computing it through logs avoids underflow for worlds whose probability
    is far below the smallest positive float.
    """
    if log_q == float("-inf"):
        return 0.0
    if log_q >= 0.0:
        return 1.0
    q = math.exp(log_q)
    if q < 1e-12:
        # π ≈ samples·q − C(samples,2)q² ⇒ q/π ≈ 1/samples · 1/(1 − (samples−1)q/2)
        return 1.0 / (samples * (1.0 - (samples - 1) * q / 2.0))
    pi = -math.expm1(samples * math.log1p(-q))
    if pi <= 0.0:
        return 0.0
    return q / pi
