"""Edge orderings and frontier bookkeeping for frontier-based BDDs.

The frontier-based construction (Section 3.2.1) processes the edges in a
fixed order ``e_1, ..., e_|E|``.  At layer ``l`` the *frontier* ``F_l`` is
the set of vertices incident both to an already-processed edge and to a
still-unprocessed edge; only frontier vertices need per-node state, which is
what keeps the diagram small.

The quality of the edge order determines the frontier width, and therefore
both the exactness horizon of the S²BDD and how quickly its bounds tighten.
This module provides several ordering strategies and precomputes, for a
chosen order, everything the construction needs per layer: which vertices
enter the frontier, which vertices leave it, and the frontier itself.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import ConfigurationError
from repro.graph.uncertain_graph import Edge, UncertainGraph
from repro.utils.rng import RandomLike, resolve_rng

__all__ = ["EdgeOrdering", "FrontierPlan", "order_edges", "build_frontier_plan"]

Vertex = Hashable


class EdgeOrdering(str, enum.Enum):
    """Available edge-ordering strategies.

    * ``INPUT`` — the order edges were added to the graph.
    * ``BFS`` — breadth-first from a terminal (default); keeps the frontier
      compact on road-like and planar-like graphs, which is where the paper
      reports the S²BDD working best.
    * ``DFS`` — depth-first from a terminal; good on long path-like graphs.
    * ``DEGREE`` — vertices visited in decreasing degree, edges grouped per
      vertex; a cheap heuristic for dense graphs.
    * ``RANDOM`` — a random permutation (ablation baseline).
    """

    INPUT = "input"
    BFS = "bfs"
    DFS = "dfs"
    DEGREE = "degree"
    RANDOM = "random"


@dataclass
class FrontierPlan:
    """Precomputed frontier structure for one edge order.

    Attributes
    ----------
    edges:
        The edges in processing order.
    frontiers:
        ``frontiers[l]`` is the frontier *after* processing the first ``l``
        edges (so ``frontiers[0]`` is empty and ``frontiers[|E|]`` is empty
        again), stored as a sorted tuple for deterministic state keys.
    entering:
        ``entering[l]`` lists the vertices that join the frontier when edge
        ``l`` (0-based) is processed.
    leaving:
        ``leaving[l]`` lists the vertices whose last incident edge is edge
        ``l``; they retire from the frontier right after it is processed.
    uncertain_degree:
        ``uncertain_degree[l][v]`` is the number of still-unprocessed edges
        incident to frontier vertex ``v`` after processing edge ``l``; this
        is the ``d`` attribute used by the deletion heuristic (Eq. 10).
    first_occurrence / last_occurrence:
        Per vertex, the index of the first/last incident edge in the order.
        Vertices with no incident edge do not appear.
    """

    edges: Tuple[Edge, ...]
    frontiers: Tuple[Tuple[Vertex, ...], ...]
    entering: Tuple[Tuple[Vertex, ...], ...]
    leaving: Tuple[Tuple[Vertex, ...], ...]
    uncertain_degree: Tuple[Dict[Vertex, int], ...]
    first_occurrence: Dict[Vertex, int]
    last_occurrence: Dict[Vertex, int]

    @property
    def num_edges(self) -> int:
        """Number of edges in the plan."""
        return len(self.edges)

    def max_frontier_size(self) -> int:
        """Return the largest frontier size over all layers."""
        return max((len(front) for front in self.frontiers), default=0)

    def unseen_terminal_count(
        self, terminals: Sequence[Vertex], layer: int
    ) -> int:
        """Number of terminals whose first incident edge comes at or after ``layer``.

        ``layer`` counts processed edges, i.e. ``layer == l`` means edges
        ``0 .. l-1`` have been processed.
        """
        count = 0
        for terminal in terminals:
            first = self.first_occurrence.get(terminal)
            if first is None or first >= layer:
                count += 1
        return count


def order_edges(
    graph: UncertainGraph,
    *,
    strategy: EdgeOrdering = EdgeOrdering.BFS,
    terminals: Sequence[Vertex] = (),
    rng: RandomLike = None,
) -> List[Edge]:
    """Return the edges of ``graph`` in the chosen processing order."""
    strategy = EdgeOrdering(strategy)
    edges = list(graph.edges())
    if strategy is EdgeOrdering.INPUT:
        return edges
    if strategy is EdgeOrdering.RANDOM:
        generator = resolve_rng(rng)
        shuffled = list(edges)
        generator.shuffle(shuffled)
        return shuffled
    if strategy is EdgeOrdering.DEGREE:
        return _degree_order(graph)
    return _traversal_order(graph, terminals, depth_first=(strategy is EdgeOrdering.DFS))


def build_frontier_plan(
    graph: UncertainGraph,
    *,
    strategy: EdgeOrdering = EdgeOrdering.BFS,
    terminals: Sequence[Vertex] = (),
    rng: RandomLike = None,
    edges: Optional[Sequence[Edge]] = None,
) -> FrontierPlan:
    """Order the edges and precompute the per-layer frontier structure.

    ``edges`` can be supplied directly (already ordered) to bypass the
    strategy, which the ablation benchmarks use.
    """
    if edges is None:
        ordered = order_edges(graph, strategy=strategy, terminals=terminals, rng=rng)
    else:
        ordered = list(edges)
        if len(ordered) != graph.num_edges:
            raise ConfigurationError(
                "an explicit edge order must contain every edge exactly once"
            )

    first: Dict[Vertex, int] = {}
    last: Dict[Vertex, int] = {}
    for index, edge in enumerate(ordered):
        for vertex in (edge.u, edge.v):
            first.setdefault(vertex, index)
            last[vertex] = index

    num_edges = len(ordered)
    frontiers: List[Tuple[Vertex, ...]] = [()] * (num_edges + 1)
    entering: List[Tuple[Vertex, ...]] = [()] * num_edges
    leaving: List[Tuple[Vertex, ...]] = [()] * num_edges
    uncertain_degree: List[Dict[Vertex, int]] = [dict() for _ in range(num_edges + 1)]

    active: Set[Vertex] = set()
    remaining: Dict[Vertex, int] = {}
    for edge in ordered:
        remaining[edge.u] = remaining.get(edge.u, 0) + 1
        if edge.u != edge.v:
            remaining[edge.v] = remaining.get(edge.v, 0) + 1

    for index, edge in enumerate(ordered):
        enter = tuple(
            vertex
            for vertex in dict.fromkeys((edge.u, edge.v))
            if first[vertex] == index
        )
        entering[index] = enter
        active.update(enter)
        remaining[edge.u] -= 1
        if edge.u != edge.v:
            remaining[edge.v] -= 1
        leave = tuple(
            vertex
            for vertex in dict.fromkeys((edge.u, edge.v))
            if last[vertex] == index
        )
        leaving[index] = leave
        active.difference_update(leave)
        frontiers[index + 1] = tuple(sorted(active, key=repr))
        uncertain_degree[index + 1] = {
            vertex: remaining[vertex] for vertex in frontiers[index + 1]
        }

    return FrontierPlan(
        edges=tuple(ordered),
        frontiers=tuple(frontiers),
        entering=tuple(entering),
        leaving=tuple(leaving),
        uncertain_degree=tuple(uncertain_degree),
        first_occurrence=first,
        last_occurrence=last,
    )


# ----------------------------------------------------------------------
# Ordering strategies
# ----------------------------------------------------------------------
def _traversal_order(
    graph: UncertainGraph,
    terminals: Sequence[Vertex],
    *,
    depth_first: bool,
) -> List[Edge]:
    """Vertex-incremental edge order driven by a BFS/DFS vertex traversal.

    Vertices are numbered by a BFS (or DFS) from a terminal; an edge is then
    processed when its *later* endpoint is introduced, i.e. edges are sorted
    by ``(max(rank(u), rank(v)), min(rank(u), rank(v)))``.  With this order
    a vertex stays on the frontier only while it still has edges to
    higher-ranked vertices, so the maximum frontier size equals the vertex
    separation number of the traversal order — dramatically smaller than a
    naive edge-BFS on dense graphs (e.g. 8 instead of ~16 on the karate
    club), which is what makes the exact BDD and tight S²BDD bounds
    feasible there.
    """
    rank: Dict[Vertex, int] = {}
    start_candidates = list(terminals) + sorted(graph.vertices(), key=repr)
    for start in start_candidates:
        if start in rank or not graph.has_vertex(start):
            continue
        queue: List[Vertex] = [start]
        rank[start] = len(rank)
        while queue:
            vertex = queue.pop() if depth_first else queue.pop(0)
            for neighbor in sorted(set(graph.neighbors(vertex)), key=repr):
                if neighbor not in rank:
                    rank[neighbor] = len(rank)
                    queue.append(neighbor)
    # Isolated vertices never appear in an edge, but rank them anyway so the
    # sort key below is total.
    for vertex in graph.vertices():
        rank.setdefault(vertex, len(rank))

    def sort_key(edge: Edge) -> Tuple[int, int, int]:
        first, second = rank[edge.u], rank[edge.v]
        if first < second:
            first, second = second, first
        return (first, second, edge.id)

    return sorted(graph.edges(), key=sort_key)


def _degree_order(graph: UncertainGraph) -> List[Edge]:
    """Order edges by visiting vertices in decreasing degree."""
    ordered: List[Edge] = []
    seen: Set[int] = set()
    by_degree = sorted(graph.vertices(), key=lambda v: (-graph.degree(v), repr(v)))
    for vertex in by_degree:
        for edge in sorted(graph.incident_edges(vertex), key=lambda e: e.id):
            if edge.id not in seen:
                seen.add(edge.id)
                ordered.append(edge)
    return ordered
