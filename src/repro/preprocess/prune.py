"""Prune phase of the extension technique.

A vertex or edge is unnecessary if removing it can never change whether the
terminals are connected — equivalently, if it does not lie on the minimal
Steiner subtree of the *bridge tree*: contract every 2-edge-connected
component (2ECC) to a single node; the bridges form a tree over these
nodes; only the components and bridges on paths between terminal-bearing
components matter for the reliability.

The implementation mirrors the paper's reconstruction (Section 5, "Prune"):

1. compute the 2ECC decomposition (reused across queries when supplied),
2. mark the components that contain at least one terminal,
3. peel non-terminal leaves off the bridge tree until only the Steiner
   subtree remains,
4. map the surviving components and bridges back to vertices and edges of
   the original uncertain graph.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import PreprocessError
from repro.graph.components import GraphDecomposition, decompose_graph
from repro.graph.connectivity import terminals_connected
from repro.graph.uncertain_graph import UncertainGraph

__all__ = ["prune"]

Vertex = Hashable


def prune(
    graph: UncertainGraph,
    terminals: Sequence[Vertex],
    *,
    decomposition: Optional[GraphDecomposition] = None,
) -> UncertainGraph:
    """Return the subgraph of ``graph`` relevant to the terminals.

    The reliability of the returned graph with the same terminal set equals
    the reliability of the original graph.  The terminals must be connected
    in the underlying topology; otherwise the reliability is trivially zero
    and a :class:`PreprocessError` is raised so the caller can short-circuit.
    """
    terminals = graph.validate_terminals(terminals)
    if len(terminals) == 1:
        # A single terminal is always "connected"; the relevant subgraph is
        # just that vertex.
        single = UncertainGraph(name=f"{graph.name}:pruned")
        single.add_vertex(terminals[0])
        return single
    if not terminals_connected(graph, terminals):
        raise PreprocessError(
            "terminals are disconnected in the underlying topology; "
            "the reliability is exactly zero"
        )

    if decomposition is None:
        decomposition = decompose_graph(graph)

    terminal_components: Set[int] = {
        decomposition.component_of[terminal] for terminal in terminals
    }

    # Bridge tree adjacency: component index -> list of (neighbour, bridge id).
    adjacency: Dict[int, List[Tuple[int, int]]] = {
        index: [] for index in range(decomposition.num_components)
    }
    for ci, cj, bridge_id in decomposition.bridge_tree_edges(graph):
        adjacency[ci].append((cj, bridge_id))
        adjacency[cj].append((ci, bridge_id))

    keep_components, keep_bridges = _steiner_subtree(adjacency, terminal_components)

    # Map back to vertices and edges of the original graph.
    kept_vertices: Set[Vertex] = set()
    for index in keep_components:
        kept_vertices.update(decomposition.components[index])

    pruned = UncertainGraph(name=f"{graph.name}:pruned")
    for vertex in kept_vertices:
        pruned.add_vertex(vertex)
    for edge in graph.edges():
        if edge.id in decomposition.bridges:
            if edge.id in keep_bridges:
                pruned.add_edge(edge.u, edge.v, edge.probability, edge_id=edge.id)
            continue
        if edge.u in kept_vertices and edge.v in kept_vertices:
            pruned.add_edge(edge.u, edge.v, edge.probability, edge_id=edge.id)
    return pruned


def _steiner_subtree(
    adjacency: Dict[int, List[Tuple[int, int]]],
    terminal_components: Set[int],
) -> Tuple[Set[int], Set[int]]:
    """Return the components and bridges of the minimal Steiner subtree.

    Works on the bridge tree (a forest in general) by iteratively removing
    leaves that carry no terminals; what remains is exactly the union of
    the tree paths between terminal components.
    """
    if len(terminal_components) == 1:
        return set(terminal_components), set()

    # Restrict to the tree containing the terminals (the input graph is
    # connected, so all terminal components live in one tree).
    degree: Dict[int, int] = {node: len(neighbors) for node, neighbors in adjacency.items()}
    removed: Set[int] = set()
    removed_bridges: Set[int] = set()
    leaves = [
        node
        for node, neighbors in adjacency.items()
        if degree[node] <= 1 and node not in terminal_components
    ]
    while leaves:
        node = leaves.pop()
        if node in removed or node in terminal_components:
            continue
        if degree[node] > 1:
            continue
        removed.add(node)
        for neighbor, bridge_id in adjacency[node]:
            if neighbor in removed or bridge_id in removed_bridges:
                continue
            removed_bridges.add(bridge_id)
            degree[neighbor] -= 1
            degree[node] -= 1
            if degree[neighbor] <= 1 and neighbor not in terminal_components:
                leaves.append(neighbor)

    keep_components = {node for node in adjacency if node not in removed}
    keep_bridges: Set[int] = set()
    for node in keep_components:
        for neighbor, bridge_id in adjacency[node]:
            if neighbor in keep_components and bridge_id not in removed_bridges:
                keep_bridges.add(bridge_id)

    # Components in other trees of the forest (unreachable from the
    # terminals) may survive the peeling if they form cycles of bridges —
    # impossible in a tree — or if they simply were never leaves (isolated
    # components with degree 0).  Drop anything not reachable from a
    # terminal component through kept bridges.
    reachable: Set[int] = set()
    stack = list(terminal_components)
    while stack:
        node = stack.pop()
        if node in reachable:
            continue
        reachable.add(node)
        for neighbor, bridge_id in adjacency[node]:
            if bridge_id in keep_bridges and neighbor not in reachable:
                stack.append(neighbor)
    keep_components &= reachable
    keep_bridges = {
        bridge_id
        for node in keep_components
        for neighbor, bridge_id in adjacency[node]
        if neighbor in keep_components and bridge_id in keep_bridges
    }
    return keep_components, keep_bridges
