"""The full extension-technique pipeline: prune → decompose → transform.

:func:`preprocess` is what the public estimator calls when the extension is
enabled.  It returns the deterministic factor ``p_b`` contributed by the
bridges, the list of reduced subproblems whose reliabilities multiply into
the final answer, and statistics used by Table 5 of the paper (preprocess
time and reduction ratio).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.exceptions import PreprocessError
from repro.graph.components import GraphDecomposition, decompose_graph
from repro.graph.connectivity import terminals_connected
from repro.graph.uncertain_graph import UncertainGraph
from repro.preprocess.decompose import decompose
from repro.preprocess.prune import prune
from repro.preprocess.transform import TransformStats, transform
from repro.utils.timers import Timer

__all__ = ["PreprocessResult", "Subproblem", "preprocess"]

Vertex = Hashable


@dataclass(frozen=True)
class Subproblem:
    """One reduced component whose reliability enters the product."""

    graph: UncertainGraph
    terminals: Tuple[Vertex, ...]


@dataclass
class PreprocessResult:
    """Outcome of the prune/decompose/transform pipeline.

    Attributes
    ----------
    bridge_probability:
        ``p_b`` — the deterministic multiplicative factor from bridges.
    subproblems:
        Reduced components (with their terminal sets) that still need a
        stochastic reliability computation.
    trivially_zero:
        ``True`` when the terminals are topologically disconnected, so the
        reliability is exactly zero regardless of ``p_b``.
    trivially_one:
        ``True`` when fewer than two distinct terminals were given.
    elapsed_seconds:
        Wall-clock time spent in preprocessing.
    original_edges / reduced_edges:
        ``|E|`` before preprocessing and the *largest* ``|E|`` among the
        reduced subproblems (the paper's "reduced graph size" column in
        Table 5 is ``reduced_edges / original_edges``).
    transform_stats:
        Per-subproblem transform statistics.
    """

    bridge_probability: float
    subproblems: List[Subproblem]
    trivially_zero: bool = False
    trivially_one: bool = False
    elapsed_seconds: float = 0.0
    original_edges: int = 0
    reduced_edges: int = 0
    pruned_edges: int = 0
    num_bridges: int = 0
    transform_stats: List[TransformStats] = field(default_factory=list)

    @property
    def reduction_ratio(self) -> float:
        """Largest reduced component size over the original size."""
        if self.original_edges == 0:
            return 1.0
        return self.reduced_edges / self.original_edges

    def deterministic_reliability(self) -> Optional[float]:
        """Return the reliability if preprocessing alone determined it."""
        if self.trivially_zero:
            return 0.0
        if self.trivially_one:
            return 1.0
        if not self.subproblems:
            return self.bridge_probability
        return None


def preprocess(
    graph: UncertainGraph,
    terminals: Sequence[Vertex],
    *,
    decomposition: Optional[GraphDecomposition] = None,
    apply_transform: bool = True,
) -> PreprocessResult:
    """Run the full extension technique on ``graph`` and ``terminals``.

    Parameters
    ----------
    graph:
        The input uncertain graph (never modified).
    terminals:
        The terminal vertices.
    decomposition:
        Optional precomputed 2-edge-connected decomposition of ``graph``;
        pass it when running many queries against the same graph, exactly
        as the paper precomputes the 2ECC index.
    apply_transform:
        Whether to run the series/parallel/loop reductions (the paper's
        default); disabling it is used by the ablation benchmarks.
    """
    timer = Timer().start()
    terminals = graph.validate_terminals(terminals)
    original_edges = graph.num_edges

    if len(terminals) <= 1:
        return PreprocessResult(
            bridge_probability=1.0,
            subproblems=[],
            trivially_one=True,
            elapsed_seconds=timer.stop(),
            original_edges=original_edges,
            reduced_edges=0,
        )

    if not terminals_connected(graph, terminals):
        return PreprocessResult(
            bridge_probability=0.0,
            subproblems=[],
            trivially_zero=True,
            elapsed_seconds=timer.stop(),
            original_edges=original_edges,
            reduced_edges=0,
        )

    if decomposition is None:
        decomposition = decompose_graph(graph)

    pruned = prune(graph, terminals, decomposition=decomposition)
    decomposed = decompose(pruned, terminals)

    subproblems: List[Subproblem] = []
    transform_stats: List[TransformStats] = []
    for subgraph, sub_terminals in decomposed.subproblems:
        if apply_transform:
            reduced, stats = transform(subgraph, sub_terminals)
            transform_stats.append(stats)
        else:
            reduced = subgraph
        if reduced.num_edges == 0:
            # Transformation collapsed the component entirely; this can only
            # happen if its terminals became directly identified, which the
            # series rule never does, so treat it as a defensive no-op factor.
            continue
        subproblems.append(Subproblem(graph=reduced, terminals=tuple(sub_terminals)))

    reduced_edges = max((sub.graph.num_edges for sub in subproblems), default=0)
    return PreprocessResult(
        bridge_probability=decomposed.bridge_probability,
        subproblems=subproblems,
        elapsed_seconds=timer.stop(),
        original_edges=original_edges,
        reduced_edges=reduced_edges,
        pruned_edges=pruned.num_edges,
        num_bridges=decomposed.num_bridges,
        transform_stats=transform_stats,
    )
