"""Decompose phase of the extension technique (Lemma 5.1).

Every bridge of the (pruned) graph must exist for the terminals to be
connected, because by construction each remaining bridge separates two
terminal-bearing parts of the graph.  Conditioning on all bridges existing
factors the reliability:

``R[G, T] = p_b · Π_i R[G_i, T_i]``

where ``p_b`` is the product of the bridge probabilities, the ``G_i`` are
the connected components left after deleting the bridges, and ``T_i``
contains the original terminals inside ``G_i`` plus the endpoints of the
deleted bridges that fall inside ``G_i`` (those endpoints must reach the
rest of the terminals *through* ``G_i``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Set, Tuple

from repro.graph.components import find_bridges
from repro.graph.connectivity import connected_components
from repro.graph.uncertain_graph import UncertainGraph

__all__ = ["DecomposeResult", "decompose"]

Vertex = Hashable


@dataclass
class DecomposeResult:
    """Outcome of the bridge decomposition.

    Attributes
    ----------
    bridge_probability:
        ``p_b`` — the product of the probabilities of the removed bridges.
    subproblems:
        List of ``(subgraph, terminals)`` pairs whose reliabilities multiply
        (together with ``p_b``) to the original reliability.  Subgraphs in
        which fewer than two terminals fall are omitted: their factor is 1.
    num_bridges:
        Number of bridges removed.
    """

    bridge_probability: float
    subproblems: List[Tuple[UncertainGraph, Tuple[Vertex, ...]]]
    num_bridges: int


def decompose(graph: UncertainGraph, terminals: Sequence[Vertex]) -> DecomposeResult:
    """Split ``graph`` along its bridges.

    The input is expected to be the output of the prune phase (every vertex
    and edge relevant to the terminals), but the function is correct for any
    connected uncertain graph whose terminals are topologically connected.
    """
    terminals = graph.validate_terminals(terminals)
    bridges = find_bridges(graph)

    bridge_probability = 1.0
    bridge_endpoints: Set[Vertex] = set()
    non_bridge_edge_ids: List[int] = []
    for edge in graph.edges():
        if edge.id in bridges:
            bridge_probability *= edge.probability
            bridge_endpoints.add(edge.u)
            bridge_endpoints.add(edge.v)
        else:
            non_bridge_edge_ids.append(edge.id)

    # Connected components once bridges are removed.
    components = connected_components(graph, edge_ids=non_bridge_edge_ids)
    terminal_set = set(terminals)

    subproblems: List[Tuple[UncertainGraph, Tuple[Vertex, ...]]] = []
    for index, component in enumerate(sorted(components, key=lambda c: repr(sorted(c, key=repr)))):
        component_terminals = [
            vertex
            for vertex in sorted(component, key=repr)
            if vertex in terminal_set or vertex in bridge_endpoints
        ]
        if len(component_terminals) < 2:
            continue
        subgraph = graph.subgraph(component, name=f"{graph.name}:component{index}")
        if subgraph.num_edges == 0:
            # A single articulation vertex with several bridges attached:
            # nothing stochastic left to evaluate.
            continue
        subproblems.append((subgraph, tuple(component_terminals)))

    return DecomposeResult(
        bridge_probability=bridge_probability,
        subproblems=subproblems,
        num_bridges=len(bridges),
    )
