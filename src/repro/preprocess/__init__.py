"""The extension technique (Section 5 of the paper).

Before building an S²BDD, the input uncertain graph can be shrunk without
changing the reliability:

1. **Prune** (:mod:`repro.preprocess.prune`) — drop every vertex and edge
   that cannot influence terminal connectivity, found via the minimal
   Steiner subtree of the bridge tree over 2-edge-connected components.
2. **Decompose** (:mod:`repro.preprocess.decompose`) — remove bridges; each
   must exist for the terminals to connect, so the reliability factors as
   ``R = p_b · Π_i R[G_i, T_i]`` (Lemma 5.1).
3. **Transform** (:mod:`repro.preprocess.transform`) — repeatedly apply
   series, parallel, and self-loop reductions inside each component.

:func:`repro.preprocess.pipeline.preprocess` chains the three phases and is
what :class:`repro.core.reliability.ReliabilityEstimator` calls when the
extension is enabled.
"""

from repro.preprocess.decompose import DecomposeResult, decompose
from repro.preprocess.pipeline import PreprocessResult, Subproblem, preprocess
from repro.preprocess.prune import prune
from repro.preprocess.transform import transform

__all__ = [
    "DecomposeResult",
    "PreprocessResult",
    "Subproblem",
    "decompose",
    "preprocess",
    "prune",
    "transform",
]
