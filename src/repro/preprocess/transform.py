"""Transform phase of the extension technique.

Inside each decomposed component the graph can be shrunk further by three
reliability-preserving rewrites (Section 5, "Transform"):

* **series** — a non-terminal vertex of degree two with edges to two other
  vertices is replaced by a single edge whose probability is the product of
  the two edge probabilities (both must exist for a path through it),
* **parallel** — two edges between the same endpoints are replaced by one
  edge with probability ``1 − (1 − p)(1 − p')`` (at least one must exist),
* **loop** — self-loops never affect connectivity and are removed.

The rewrites are iterated to a fixpoint; series reductions can create
parallel edges and vice versa, which is why the graph model supports
multigraphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Set, Tuple

from repro.graph.uncertain_graph import UncertainGraph

__all__ = ["TransformStats", "transform"]

Vertex = Hashable


@dataclass
class TransformStats:
    """Counters describing how much the transform phase shrank a graph."""

    series_reductions: int = 0
    parallel_reductions: int = 0
    loops_removed: int = 0
    vertices_before: int = 0
    vertices_after: int = 0
    edges_before: int = 0
    edges_after: int = 0


def transform(
    graph: UncertainGraph,
    terminals: Sequence[Vertex],
    *,
    max_rounds: int = 1_000,
) -> Tuple[UncertainGraph, TransformStats]:
    """Return a reduced copy of ``graph`` with the same reliability.

    Parameters
    ----------
    graph:
        The component to reduce (not modified).
    terminals:
        Vertices that must be preserved; series reduction never removes a
        terminal.
    max_rounds:
        Safety cap on the number of fixpoint iterations.

    Returns
    -------
    ``(reduced_graph, stats)``
    """
    terminals = graph.validate_terminals(terminals)
    terminal_set: Set[Vertex] = set(terminals)
    reduced = graph.copy(name=f"{graph.name}:transformed")
    stats = TransformStats(
        vertices_before=graph.num_vertices,
        edges_before=graph.num_edges,
    )

    for _ in range(max_rounds):
        changed = False
        changed |= _remove_loops(reduced, stats)
        changed |= _merge_parallel_edges(reduced, stats)
        changed |= _contract_series_vertices(reduced, terminal_set, stats)
        if not changed:
            break

    stats.vertices_after = reduced.num_vertices
    stats.edges_after = reduced.num_edges
    return reduced, stats


def _remove_loops(graph: UncertainGraph, stats: TransformStats) -> bool:
    """Delete every self-loop; return ``True`` if anything changed."""
    loops = [edge.id for edge in graph.edges() if edge.is_loop()]
    for edge_id in loops:
        graph.remove_edge(edge_id)
        stats.loops_removed += 1
    return bool(loops)


def _merge_parallel_edges(graph: UncertainGraph, stats: TransformStats) -> bool:
    """Merge parallel edges pairwise; return ``True`` if anything changed."""
    groups: Dict[Tuple[Vertex, Vertex], List[int]] = {}
    for edge in graph.edges():
        if edge.is_loop():
            continue
        key = tuple(sorted((edge.u, edge.v), key=repr))  # type: ignore[assignment]
        groups.setdefault(key, []).append(edge.id)

    changed = False
    for (u, v), edge_ids in groups.items():
        if len(edge_ids) < 2:
            continue
        changed = True
        failure_probability = 1.0
        for edge_id in edge_ids:
            failure_probability *= 1.0 - graph.probability(edge_id)
            graph.remove_edge(edge_id)
        merged_probability = min(1.0, max(1e-15, 1.0 - failure_probability))
        graph.add_edge(u, v, merged_probability)
        stats.parallel_reductions += len(edge_ids) - 1
    return changed


def _contract_series_vertices(
    graph: UncertainGraph,
    terminal_set: Set[Vertex],
    stats: TransformStats,
) -> bool:
    """Contract degree-two non-terminal vertices; return ``True`` on change."""
    changed = False
    # Iterate over a snapshot: contractions mutate the vertex set.
    for vertex in list(graph.vertices()):
        if vertex in terminal_set or not graph.has_vertex(vertex):
            continue
        incident = graph.incident_edges(vertex)
        if len(incident) != 2:
            continue
        first, second = incident
        if first.is_loop() or second.is_loop():
            continue
        a = first.other(vertex)
        b = second.other(vertex)
        probability = first.probability * second.probability
        graph.remove_vertex(vertex)
        if a == b:
            # Both edges led to the same neighbour; the series reduction
            # would create a self-loop, which contributes nothing.
            stats.loops_removed += 1
        else:
            graph.add_edge(a, b, max(1e-15, probability))
        stats.series_reductions += 1
        changed = True
    return changed
