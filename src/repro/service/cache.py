"""The service result cache: LRU + optional TTL, byte-size bounded.

Identical queries from different clients should hit a cache, not recompute
a Monte-Carlo estimate.  :class:`ResultCache` stores JSON-safe response
payloads keyed by the triple the service's determinism contract is built
on::

    (graph fingerprint, query.canonical_key(), config.fingerprint())

Because the service evaluates every request with a pinned seed schedule
(``seed_index=0`` on a deterministically seeded engine), that key fully
determines the answer — a cached hit is bit-identical (timing fields
aside) to a fresh evaluation, which tests and the benchmark's parity gate
verify through :func:`repro.engine.parallel.results_checksum`.

Entries are evicted least-recently-used once the configured byte budget
(or entry count) is exceeded, and lazily expired when a TTL is set.  All
counters are exposed through :meth:`ResultCache.stats` and merged into the
service's ``/stats`` payload.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_positive_int

__all__ = ["CacheStats", "ResultCache", "cache_key"]

#: Default byte budget (16 MiB) — thousands of typical query results.
DEFAULT_MAX_BYTES = 16 * 1024 * 1024

CacheKey = Tuple[str, str, str]


def cache_key(
    graph_fingerprint: str, query_key: str, config_fingerprint: str
) -> CacheKey:
    """The service cache key triple (documented contract, one place)."""
    return (graph_fingerprint, query_key, config_fingerprint)


@dataclass
class CacheStats:
    """Counters of one :class:`ResultCache`.

    ``hits`` / ``misses`` count lookups; ``evictions`` counts entries
    dropped by the LRU bound, ``expirations`` entries dropped because
    their TTL lapsed — with ``bytes_evicted`` / ``bytes_expired``
    accumulating the payload bytes those drops released, so cache churn
    is measurable (a high ``bytes_evicted`` rate under a low hit rate
    means the byte budget is too small for the working set).
    ``invalidations`` counts entries dropped by scoped invalidation
    (:meth:`ResultCache.invalidate_graph` after a graph update, or
    :meth:`ResultCache.invalidate_all`), with ``bytes_invalidated``
    accumulating the payload bytes released — same convention as
    ``bytes_evicted``.  ``current_bytes`` / ``entries`` describe the live
    content; ``max_bytes`` the configured budget.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidations: int = 0
    bytes_evicted: int = 0
    bytes_expired: int = 0
    bytes_invalidated: int = 0
    current_bytes: int = 0
    entries: int = 0
    max_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up yet)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def to_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        payload["hit_rate"] = round(self.hit_rate, 6)
        return payload


class _Entry:
    __slots__ = ("payload", "size", "expires_at")

    def __init__(self, payload: Dict[str, Any], size: int, expires_at: Optional[float]):
        self.payload = payload
        self.size = size
        self.expires_at = expires_at


class ResultCache:
    """A thread-safe LRU cache of JSON-safe service response payloads.

    Parameters
    ----------
    max_bytes:
        Byte budget over the serialized size of all cached payloads
        (:data:`DEFAULT_MAX_BYTES` by default).  A payload larger than the
        whole budget is simply not cached.
    max_entries:
        Optional additional bound on the entry count.
    ttl:
        Optional time-to-live in seconds; entries older than this are
        treated as misses (and dropped) on lookup.  ``None`` disables
        expiry — correct for the service's deterministic results, which
        never go stale; a TTL only bounds staleness of *stats-bearing*
        payload fields and memory residency.
    clock:
        Injectable monotonic clock, for tests.
    """

    def __init__(
        self,
        *,
        max_bytes: int = DEFAULT_MAX_BYTES,
        max_entries: Optional[int] = None,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        check_positive_int(max_bytes, "max_bytes")
        if max_entries is not None:
            check_positive_int(max_entries, "max_entries")
        if ttl is not None and ttl <= 0:
            raise ConfigurationError(f"ttl must be positive or None, got {ttl!r}")
        self._max_bytes = max_bytes
        self._max_entries = max_entries
        self._ttl = ttl
        self._clock = clock
        self._entries: "OrderedDict[CacheKey, _Entry]" = OrderedDict()
        self._lock = threading.Lock()
        self._stats = CacheStats(max_bytes=max_bytes)

    @staticmethod
    def payload_size(payload: Dict[str, Any]) -> int:
        """The byte size a payload is accounted at (its compact JSON form)."""
        return len(
            json.dumps(payload, separators=(",", ":"), default=repr).encode("utf-8")
        )

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(self, key: CacheKey) -> Optional[Dict[str, Any]]:
        """The cached payload for ``key``, or ``None`` (counted as a miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.expires_at is not None:
                if self._clock() >= entry.expires_at:
                    del self._entries[key]
                    self._stats.current_bytes -= entry.size
                    self._stats.expirations += 1
                    self._stats.bytes_expired += entry.size
                    entry = None
            if entry is None:
                self._stats.misses += 1
                self._stats.entries = len(self._entries)
                return None
            self._entries.move_to_end(key)
            self._stats.hits += 1
            return entry.payload

    def put(self, key: CacheKey, payload: Dict[str, Any]) -> bool:
        """Store ``payload`` under ``key``; returns whether it was cached.

        Payloads larger than the whole byte budget are rejected (returns
        ``False``) rather than evicting the entire cache to fit them.
        """
        size = self.payload_size(payload)
        if size > self._max_bytes:
            return False
        expires_at = self._clock() + self._ttl if self._ttl is not None else None
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._stats.current_bytes -= old.size
            self._entries[key] = _Entry(payload, size, expires_at)
            self._stats.current_bytes += size
            self._stats.stores += 1
            # The just-stored entry is MRU and within budget on its own, so
            # this loop always terminates before evicting it.
            while self._stats.current_bytes > self._max_bytes or (
                self._max_entries is not None
                and len(self._entries) > self._max_entries
            ):
                _, evicted = self._entries.popitem(last=False)
                self._stats.current_bytes -= evicted.size
                self._stats.evictions += 1
                self._stats.bytes_evicted += evicted.size
            self._stats.entries = len(self._entries)
        return True

    def clear(self) -> None:
        """Drop every entry (counters other than content gauges persist)."""
        with self._lock:
            self._entries.clear()
            self._stats.current_bytes = 0
            self._stats.entries = 0

    # ------------------------------------------------------------------
    # Scoped invalidation
    # ------------------------------------------------------------------
    def invalidate_graph(self, graph_fingerprint: str) -> int:
        """Drop exactly the entries keyed under ``graph_fingerprint``.

        The graph fingerprint is the first element of the cache-key
        triple, so after a graph update this removes precisely the stale
        results — entries for other graphs (and other versions of this
        one) are untouched.  Returns how many entries were dropped.
        """
        with self._lock:
            stale = [
                key for key in self._entries if key[0] == graph_fingerprint
            ]
            for key in stale:
                entry = self._entries.pop(key)
                self._stats.current_bytes -= entry.size
                self._stats.invalidations += 1
                self._stats.bytes_invalidated += entry.size
            self._stats.entries = len(self._entries)
            return len(stale)

    def invalidate_all(self) -> int:
        """Drop every entry, counting the drops as invalidations.

        Unlike :meth:`clear` (a maintenance reset), this is the audited
        form: ``invalidations`` / ``bytes_invalidated`` advance so the
        flush shows up in ``/stats``.  Returns the entry count dropped.
        """
        with self._lock:
            dropped = len(self._entries)
            freed = self._stats.current_bytes
            self._entries.clear()
            self._stats.invalidations += dropped
            self._stats.bytes_invalidated += freed
            self._stats.current_bytes = 0
            self._stats.entries = 0
            return dropped

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> CacheStats:
        """An independent snapshot of the cache counters."""
        with self._lock:
            self._stats.entries = len(self._entries)
            return CacheStats(**asdict(self._stats))
