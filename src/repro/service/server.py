"""The JSON-over-HTTP network front-end (stdlib asyncio only).

A deliberately small HTTP/1.1 server exposing the service over six
endpoints, all speaking the existing wire formats
(:func:`~repro.engine.queries.query_from_dict` /
:func:`~repro.engine.queries.result_from_dict` /
:func:`~repro.engine.deltas.delta_from_dict`):

=========================  =============================================
``GET /healthz``           liveness probe (name, registered graph count)
``GET /graphs``            the catalog: names, fingerprints, versions
``GET /stats``             service + cache + coalescer + engine counters
``GET /metrics``           Prometheus text exposition (registry + the
                           ``/stats`` families via :mod:`repro.obs.bridge`)
``POST /query``            ``{"graph": name, "query": Query.to_dict()}``
``POST /query_batch``      ``{"graph": name, "queries": [...]}``
``POST /update``           ``{"graph": name, "delta": DeltaOp.to_dict()}``
=========================  =============================================

Requests may carry an ``X-Repro-Trace`` header (a hex trace id); traced
``/query`` requests run under a :class:`~repro.obs.trace.Trace` and —
when the body asks with ``{"timings": true}`` — answer with a per-stage
``"timings"`` section.  Without the header a fresh trace id is minted
for timing-requesting bodies, so ``timings`` works standalone too.

Evaluation runs on a bounded thread pool (``max_inflight`` threads) so
the asyncio loop never blocks on engine work; requests beyond the pool
plus a bounded wait queue are rejected with **429** and a ``Retry-After``
header — admission control, so overload degrades into fast rejections
instead of unbounded queueing (updates count against the same budget).
Client errors (unknown graph, malformed query, invalid terminals) map to
**400**; an update on a read-only service to **403**; everything else to
**500**.

Connections are one-request (``Connection: close``), which keeps the
protocol parser trivial; the blocking
:class:`~repro.service.client.ServiceClient` opens one connection per
call.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional, Tuple

from repro.exceptions import ConfigurationError, ReproError, UpdateRejectedError
from repro.obs import bridge, get_registry
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE, MetricsRegistry
from repro.obs.trace import TRACE_HEADER, new_trace, parse_header, run_with_trace
from repro.service.core import ReliabilityService
from repro.utils.validation import check_positive_int

__all__ = ["AdmissionStats", "MAX_BODY_BYTES", "ServiceServer"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

#: Per-connection read timeout (seconds) for headers and body.
_IO_TIMEOUT = 30.0

#: Paths metered under their own label; everything else is "other".
_METERED_PATHS = frozenset(
    {"/healthz", "/graphs", "/stats", "/metrics", "/query", "/query_batch", "/update"}
)

#: Largest request body the server will buffer (a query batch of
#: thousands of queries fits in a fraction of this); bigger declared
#: bodies are rejected 413 before a byte of them is read.
MAX_BODY_BYTES = 8 * 1024 * 1024


class _BodyTooLarge(ValueError):
    """A declared Content-Length beyond :data:`MAX_BODY_BYTES`."""


@dataclass
class AdmissionStats:
    """Admission-control counters of one :class:`ServiceServer`."""

    accepted: int = 0
    rejected: int = 0
    peak_pending: int = 0

    def to_dict(self) -> Dict[str, int]:
        return asdict(self)


class ServiceServer:
    """Serve a :class:`ReliabilityService` over JSON/HTTP.

    Parameters
    ----------
    service:
        The blocking serving core.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`port` once started — how tests and the benchmark run
        without port collisions).
    max_inflight:
        Evaluation threads — query requests evaluated concurrently.
    queue_limit:
        Accepted-but-waiting query requests beyond ``max_inflight``;
        anything above ``max_inflight + queue_limit`` is rejected 429.
    request_timeout:
        Upper bound (seconds) one query request may spend waiting on the
        service before answering 500.
    registry:
        The :class:`~repro.obs.metrics.MetricsRegistry` backing
        ``GET /metrics``; defaults to the process-global one.  The
        server records per-path request latencies and response counts
        into it; the legacy ``/stats`` families are bridged in at scrape
        time (see :mod:`repro.obs.bridge`), so both endpoints always
        agree.
    """

    def __init__(
        self,
        service: ReliabilityService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 8,
        queue_limit: int = 32,
        request_timeout: float = 300.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        check_positive_int(max_inflight, "max_inflight")
        if queue_limit < 0:
            raise ConfigurationError(f"queue_limit must be >= 0, got {queue_limit}")
        self._service = service
        self._host = host
        self._requested_port = port
        self._max_pending = max_inflight + queue_limit
        self._request_timeout = request_timeout
        self._executor = ThreadPoolExecutor(
            max_workers=max_inflight, thread_name_prefix="repro-serve"
        )
        self._admission = AdmissionStats()
        self._pending = 0
        self._admission_lock = threading.Lock()
        self._registry = registry if registry is not None else get_registry()
        self._request_seconds = self._registry.histogram(
            "repro_http_request_seconds",
            "Wall-clock latency of handled HTTP requests.",
            labels=("path",),
        )
        self._responses_total = self._registry.counter(
            "repro_http_responses_total",
            "HTTP responses by path and status code.",
            labels=("path", "status"),
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._port: Optional[int] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        """The bind host."""
        return self._host

    @property
    def port(self) -> int:
        """The bound port (available once the server has started)."""
        if self._port is None:
            raise ConfigurationError("the server has not been started yet")
        return self._port

    @property
    def address(self) -> str:
        """``host:port`` of the running server."""
        return f"{self._host}:{self.port}"

    async def start(self) -> "ServiceServer":
        """Bind and start accepting connections on the running loop."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._requested_port
        )
        self._port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        """:meth:`start` (when needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    def start_background(self) -> "ServiceServer":
        """Run the server on a daemon thread; returns once it is bound.

        This is how tests, the benchmark harness, and the CI smoke job
        embed a live server: ``server.start_background()``, talk to
        ``server.port``, then ``server.close()``.
        """
        ready = threading.Event()
        startup_error: Dict[str, BaseException] = {}

        def _run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.start())
            except BaseException as error:  # surface bind failures to the caller
                startup_error["error"] = error
                ready.set()
                loop.close()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

        self._thread = threading.Thread(
            target=_run, name="repro-service-server", daemon=True
        )
        self._thread.start()
        ready.wait()
        if "error" in startup_error:
            raise startup_error["error"]
        return self

    def close(self) -> None:
        """Stop accepting, stop the loop thread, release the thread pool."""
        loop, server = self._loop, self._server
        if loop is not None and server is not None and loop.is_running():

            def _shutdown() -> None:
                server.close()
                loop.stop()

            loop.call_soon_threadsafe(_shutdown)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._executor.shutdown(wait=False)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        status, payload = 500, {"error": "internal error"}
        try:
            parsed = await asyncio.wait_for(self._read_request(reader), _IO_TIMEOUT)
        except asyncio.TimeoutError:
            parsed, status, payload = None, 400, {"error": "request read timed out"}
        except _BodyTooLarge as error:
            parsed, status, payload = None, 413, {"error": str(error)}
        except Exception as error:
            parsed, status, payload = None, 400, {
                "error": f"malformed request: {error}"
            }
        else:
            if parsed is None:
                return  # client closed without sending a request
        if parsed is not None:
            method, path, body, request_headers = parsed
            route = path.split("?", 1)[0]
            started = time.perf_counter()
            try:
                status, payload = await self._route(
                    method, path, body, request_headers
                )
            except Exception as error:
                # Parse errors above are the client's fault (400); anything
                # escaping the routing layer is ours (500).
                status, payload = 500, {
                    "error": str(error),
                    "error_type": type(error).__name__,
                }
            # Unknown paths collapse into one label so a scanner cannot
            # blow up the metric's cardinality.
            label = route if route in _METERED_PATHS else "other"
            self._request_seconds.labels(path=label).observe(
                time.perf_counter() - started
            )
            self._responses_total.labels(path=label, status=str(status)).inc()
        try:
            if isinstance(payload, str):  # text exposition (/metrics)
                blob = payload.encode("utf-8")
                content_type = PROMETHEUS_CONTENT_TYPE
            else:
                blob = json.dumps(payload, default=repr).encode("utf-8")
                content_type = "application/json"
            headers = [
                f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(blob)}",
                "Connection: close",
            ]
            if status == 429:
                headers.append("Retry-After: 1")
            writer.write(("\r\n".join(headers) + "\r\n\r\n").encode("ascii") + blob)
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Optional[Tuple[str, str, bytes, Dict[str, str]]]:
        request_line = await reader.readline()
        if not request_line.strip():
            return None
        parts = request_line.decode("ascii", "replace").split()
        if len(parts) < 2:
            raise ValueError(f"bad request line {request_line!r}")
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("ascii", "replace").partition(":")
            name = name.strip().lower()
            headers[name] = value.strip()
            if name == "content-length":
                content_length = int(value.strip())
        if content_length > MAX_BODY_BYTES:
            raise _BodyTooLarge(
                f"request body of {content_length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        body = await reader.readexactly(content_length) if content_length else b""
        return method, path, body, headers

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(
        self, method: str, path: str, body: bytes, headers: Dict[str, str]
    ) -> Tuple[int, Any]:
        path = path.split("?", 1)[0]
        if path == "/healthz" and method == "GET":
            return 200, {
                "status": "ok",
                "graphs": len(self._service.catalog.names()),
            }
        if path == "/graphs" and method == "GET":
            return 200, {"graphs": self._service.describe_graphs()}
        if path == "/stats" and method == "GET":
            stats = self._service.stats()
            stats["admission"] = self._admission_snapshot()
            return 200, stats
        if path == "/metrics" and method == "GET":
            return 200, self._render_metrics()
        if path in ("/query", "/query_batch"):
            if method != "POST":
                return 405, {"error": f"{path} expects POST"}
            return await self._handle_query(path, body, headers)
        if path == "/update":
            if method != "POST":
                return 405, {"error": f"{path} expects POST"}
            return await self._handle_update(body)
        return 404, {"error": f"unknown endpoint {path!r}"}

    def _render_metrics(self) -> str:
        """The ``GET /metrics`` text: registry + bridged ``/stats`` families.

        Bridging happens here, at scrape time, from the same snapshots
        ``/stats`` serves — the legacy counter dataclasses keep their APIs
        and the two endpoints cannot drift apart.
        """
        samples = bridge.service_samples(self._service.stats())
        samples += bridge.admission_samples(self._admission_snapshot())
        return self._registry.render(extra_samples=samples)

    def _admission_snapshot(self) -> Dict[str, int]:
        with self._admission_lock:
            snapshot = self._admission.to_dict()
            snapshot["pending"] = self._pending
            snapshot["max_pending"] = self._max_pending
        return snapshot

    def _try_admit(self) -> Optional[Tuple[int, Dict[str, Any]]]:
        """Claim an admission slot; the 429 response when none is free.

        Admission control: accept at most ``max_inflight`` executing plus
        ``queue_limit`` waiting requests; shed the rest immediately.  The
        caller must balance a successful claim with :meth:`_release`.
        """
        with self._admission_lock:
            if self._pending >= self._max_pending:
                self._admission.rejected += 1
                return 429, {
                    "error": "service overloaded; retry later",
                    "pending": self._pending,
                }
            self._pending += 1
            self._admission.accepted += 1
            self._admission.peak_pending = max(
                self._admission.peak_pending, self._pending
            )
        return None

    def _release(self) -> None:
        with self._admission_lock:
            self._pending -= 1

    async def _handle_query(
        self, path: str, body: bytes, headers: Dict[str, str]
    ) -> Tuple[int, Dict[str, Any]]:
        try:
            payload = json.loads(body.decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("request body must be a JSON object")
            graph = payload["graph"]
        except (ValueError, KeyError) as error:
            return 400, {"error": f"bad request body: {error}"}

        # A trace exists only when the client asked for one — by header
        # (router/replica propagation) or by requesting timings — so
        # untraced traffic pays nothing beyond this lookup.
        trace_id = parse_header(headers.get(TRACE_HEADER.lower()))
        want_timings = bool(payload.get("timings"))
        trace = new_trace(trace_id) if (trace_id or want_timings) else None

        rejected = self._try_admit()
        if rejected is not None:
            return rejected
        loop = asyncio.get_running_loop()
        try:
            if path == "/query":
                if "query" not in payload:
                    return 400, {"error": "missing 'query' field"}
                # run_with_trace: run_in_executor does not carry the
                # contextvar to the worker thread.
                work = lambda: run_with_trace(  # noqa: E731
                    trace,
                    self._service.query,
                    graph,
                    payload["query"],
                    timeout=self._request_timeout,
                    timings=want_timings,
                )
                result = await loop.run_in_executor(self._executor, work)
                return 200, result
            queries = payload.get("queries")
            if not isinstance(queries, list):
                return 400, {"error": "missing 'queries' list"}
            work = lambda: run_with_trace(  # noqa: E731
                trace,
                self._service.query_batch,
                graph,
                queries,
                timeout=self._request_timeout,
            )
            results = await loop.run_in_executor(self._executor, work)
            return 200, {"graph": graph, "results": results}
        except ReproError as error:
            return 400, {"error": str(error), "error_type": type(error).__name__}
        except Exception as error:
            return 500, {"error": str(error), "error_type": type(error).__name__}
        finally:
            self._release()

    async def _handle_update(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        try:
            payload = json.loads(body.decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("request body must be a JSON object")
            graph = payload["graph"]
            delta = payload["delta"]
        except (ValueError, KeyError) as error:
            return 400, {"error": f"bad request body: {error}"}

        rejected = self._try_admit()
        if rejected is not None:
            return rejected
        loop = asyncio.get_running_loop()
        try:
            work = lambda: self._service.update(graph, delta)  # noqa: E731
            result = await loop.run_in_executor(self._executor, work)
            return 200, result
        except UpdateRejectedError as error:
            return 403, {"error": str(error), "error_type": type(error).__name__}
        except ReproError as error:
            return 400, {"error": str(error), "error_type": type(error).__name__}
        except Exception as error:
            return 500, {"error": str(error), "error_type": type(error).__name__}
        finally:
            self._release()
