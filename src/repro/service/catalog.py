"""The graph catalog: named uncertain graphs with prepared engines.

The service layer's shared environment is a :class:`GraphCatalog` — a
registry of named uncertain graphs (datasets from :mod:`repro.datasets`,
files loaded through :mod:`repro.graph.io`, or caller-built graphs), each
stamped with a content fingerprint and served by prepared
:class:`~repro.engine.engine.ReliabilityEngine` sessions.  One engine
exists per ``(graph, config)`` pair, so every client of the service shares
the same 2-edge-connected decomposition index, the same cached world
pools, and — for the s2bdd backend — the same constructed-diagram cache
(:class:`~repro.engine.diagrams.DiagramCache`) instead of re-preparing
per request.  Constructed diagrams survive probability-only
:meth:`GraphCatalog.update` deltas (they are re-swept with the new
probabilities on next lookup) and are evicted, scoped to the updated
graph, on topology deltas.

Fingerprints here are *content* fingerprints (a SHA-256 over the vertex
and edge lists), not the in-process ``topology_fingerprint()`` stamp: the
service's cache keys must survive process restarts and identify a graph by
what it contains, not by where it lives in memory.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import struct
import threading
import warnings
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.datasets import load_dataset
from repro.engine.config import EstimatorConfig
from repro.engine.deltas import DeltaOp, as_graph_delta
from repro.engine.engine import ReliabilityEngine
from repro.exceptions import ConfigurationError
from repro.graph.io import read_edge_list
from repro.graph.uncertain_graph import UncertainGraph

__all__ = [
    "CatalogEntry",
    "CatalogUpdate",
    "DatasetSource",
    "FileSource",
    "GraphCatalog",
    "GraphSource",
    "graph_fingerprint",
]

#: Seed substituted when a service config leaves ``rng`` unset.  The
#: service's cache-key contract requires a deterministic seed; pinning the
#: default here (instead of OS seeding) makes an unconfigured service
#: reproducible across restarts.
DEFAULT_SERVICE_SEED = 2019


def graph_fingerprint(graph: UncertainGraph) -> str:
    """A stable hex digest of a graph's content.

    Covers the vertex set (in iteration order — sampled worlds depend on
    it) and every edge's endpoints and probability in edge-id order; the
    display name is deliberately excluded.  Two graphs fingerprint equally
    iff every reliability query answers identically on them, across
    processes and sessions.

    Probabilities are digested from their IEEE-754 bytes (the same
    technique as the compiled kernel's stamp) rather than embedded in the
    JSON payload: shortest-repr float formatting is the single slowest
    step of hashing a graph, and this function sits on the
    ``catalog.update`` hot path, re-stamping the content after every
    delta.  Packed bytes are exactly as discriminating — bit-identical
    floats in, bit-identical digest out, ``-0.0`` included.
    """
    payload = {
        "vertices": [repr(vertex) for vertex in graph.vertices()],
        "edges": [[repr(edge.u), repr(edge.v)] for edge in graph.edges()],
        "probabilities": hashlib.sha256(
            b"".join(struct.pack("<d", edge.probability) for edge in graph.edges())
        ).hexdigest(),
    }
    blob = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class DatasetSource:
    """Register a named :mod:`repro.datasets` dataset (``key`` at ``scale``)."""

    key: str
    scale: str = "bench"


@dataclass(frozen=True)
class FileSource:
    """Register an edge-list file (read via :func:`repro.graph.io.read_edge_list`)."""

    path: str


#: What :meth:`GraphCatalog.register` accepts: a caller-built graph, a
#: dataset reference, or a file reference.
GraphSource = Union[UncertainGraph, DatasetSource, FileSource]


@dataclass(frozen=True)
class CatalogEntry:
    """One registered graph: its name, content, fingerprint, and version.

    ``version`` starts at 1 and increments monotonically on every
    :meth:`GraphCatalog.update`, while ``fingerprint`` is the content
    hash — the pair lets a client distinguish "different graph" (both
    change on an update) from "same graph, concurrent update" (a version
    bump between two reads of ``/graphs``).
    """

    name: str
    graph: UncertainGraph
    fingerprint: str
    source: str
    version: int = 1

    def describe(self) -> Dict[str, object]:
        """A JSON-safe summary for the ``/graphs`` endpoint."""
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "version": self.version,
            "source": self.source,
            "vertices": self.graph.num_vertices,
            "edges": self.graph.num_edges,
            "average_degree": round(self.graph.average_degree(), 4),
            "average_probability": round(self.graph.average_probability(), 4),
        }


@dataclass(frozen=True)
class CatalogUpdate:
    """What one :meth:`GraphCatalog.update` call did, for callers to relay.

    ``old_fingerprint`` is what cached results of the pre-delta graph are
    keyed under — the service invalidates exactly that scope.
    ``incremental`` reports whether every prepared engine took the
    probability-only fast path; ``pools_invalidated`` totals the world
    pools dropped across them.
    """

    name: str
    old_fingerprint: str
    fingerprint: str
    version: int
    incremental: bool
    pools_invalidated: int

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe form (the core of the ``/update`` response)."""
        return dataclasses.asdict(self)


class GraphCatalog:
    """Named uncertain graphs, each with prepared per-config engines.

    Parameters
    ----------
    config:
        The default :class:`EstimatorConfig` of engines this catalog
        prepares.  A config without an integer seed is pinned to
        :data:`DEFAULT_SERVICE_SEED` — the service's answers must be
        deterministic functions of ``(graph, query, config)``, so OS
        seeding is not an option here; a live ``random.Random`` is
        rejected for the same reason.

    Notes
    -----
    Thread-safe: the server answers requests from multiple threads, and
    registration may race with queries.  Engines are created lazily on
    first use per ``(graph name, config fingerprint)`` and prepared
    (decomposition indexed) exactly once.
    """

    def __init__(self, config: Optional[EstimatorConfig] = None) -> None:
        self._config = self._normalize_config(config or EstimatorConfig())
        self._entries: Dict[str, CatalogEntry] = {}
        self._engines: Dict[Tuple[str, str], ReliabilityEngine] = {}
        self._lock = threading.Lock()

    @staticmethod
    def _normalize_config(config: EstimatorConfig) -> EstimatorConfig:
        import random

        if isinstance(config.rng, random.Random):
            raise ConfigurationError(
                "service configs must use an int seed (or None for the "
                "pinned default); a live random.Random has no stable "
                "fingerprint, so cached results could not be reproduced"
            )
        if config.rng is None:
            config = config.replace(rng=DEFAULT_SERVICE_SEED)
        return config

    @property
    def config(self) -> EstimatorConfig:
        """The catalog's default (normalized) engine configuration."""
        return self._config

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self, name: str, source: GraphSource, *, label: Optional[str] = None
    ) -> CatalogEntry:
        """Register a graph under ``name``; returns its catalog entry.

        ``source`` is the typed union of everything the catalog can
        serve: a caller-built :class:`~repro.graph.uncertain_graph.UncertainGraph`,
        a :class:`DatasetSource` naming a :mod:`repro.datasets` dataset,
        or a :class:`FileSource` naming an edge-list file.  ``label``
        overrides the recorded provenance string (defaults to
        ``"caller"``, ``"dataset:<key>@<scale>"``, or ``"file:<path>"``
        respectively).

        Re-registering a name with identical content is a no-op; with
        different content it raises, because clients may hold cached
        results keyed by the old fingerprint under that name — mutate a
        served graph through :meth:`update` instead.
        """
        if not name:
            raise ConfigurationError("a catalog entry needs a non-empty name")
        if isinstance(source, UncertainGraph):
            graph = source
            provenance = label if label is not None else "caller"
        elif isinstance(source, DatasetSource):
            graph = load_dataset(source.key, scale=source.scale)
            provenance = (
                label if label is not None else f"dataset:{source.key}@{source.scale}"
            )
        elif isinstance(source, FileSource):
            graph = read_edge_list(source.path, name=name)
            provenance = label if label is not None else f"file:{source.path}"
        else:
            raise ConfigurationError(
                "register() takes an UncertainGraph, DatasetSource, or "
                f"FileSource, got {type(source)!r}"
            )
        entry = CatalogEntry(
            name=name,
            graph=graph,
            fingerprint=graph_fingerprint(graph),
            source=provenance,
        )
        with self._lock:
            existing = self._entries.get(name)
            if existing is not None:
                if existing.fingerprint == entry.fingerprint:
                    return existing
                raise ConfigurationError(
                    f"catalog name {name!r} is already registered with "
                    "different content; unregister it first, pick a new "
                    "name, or apply a delta through update()"
                )
            self._entries[name] = entry
        return entry

    def register_dataset(
        self, key: str, *, name: Optional[str] = None, scale: str = "bench"
    ) -> CatalogEntry:
        """Deprecated alias for ``register(name, DatasetSource(key, scale))``."""
        warnings.warn(
            "GraphCatalog.register_dataset() is deprecated; use "
            "register(name, DatasetSource(key, scale=...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.register(name or key, DatasetSource(key, scale=scale))

    def register_file(self, name: str, path: str) -> CatalogEntry:
        """Deprecated alias for ``register(name, FileSource(path))``."""
        warnings.warn(
            "GraphCatalog.register_file() is deprecated; use "
            "register(name, FileSource(path)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.register(name, FileSource(path))

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update(
        self, name: str, delta: Union[DeltaOp, Mapping[str, Any]]
    ) -> CatalogUpdate:
        """Apply a typed delta to the graph registered under ``name``.

        The delta (any :mod:`repro.engine.deltas` value, or its
        ``to_dict`` wire form) is validated first — a rejected delta
        leaves graph, engines, and entry untouched.  On success every
        engine prepared for ``name`` is re-synced (incrementally for
        probability-only deltas: the decomposition index, compiled CSR,
        and constructed S²BDD diagrams survive — the latter re-swept with
        the new probabilities on next lookup; topology deltas evict the
        diagrams scoped to this graph), and the entry's fingerprint is
        recomputed with its version bumped.

        The caller owns invalidation of results cached under the returned
        ``old_fingerprint`` (:class:`~repro.service.core.ReliabilityService`
        does this) and must serialize updates against in-flight
        evaluations — the catalog only guarantees updates do not race
        each other or registration.
        """
        batch = as_graph_delta(delta)
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                known = ", ".join(repr(key) for key in self._entries) or "none"
                raise ConfigurationError(
                    f"unknown graph {name!r}; registered graphs: {known}"
                )
            engines = [
                engine for (key, _), engine in self._engines.items() if key == name
            ]
            graph = entry.graph
            if engines:
                outcome = engines[0].apply_delta(batch, graph)
                incremental = outcome.incremental
                pools_invalidated = outcome.pools_invalidated
                for other in engines[1:]:
                    synced = other.reprepare(graph, probability_only=incremental)
                    pools_invalidated += synced.pools_invalidated
            else:
                batch.validate(graph)
                incremental = batch.probability_only
                batch.apply(graph)
                pools_invalidated = 0
            updated = dataclasses.replace(
                entry,
                fingerprint=graph_fingerprint(graph),
                version=entry.version + 1,
            )
            self._entries[name] = updated
        return CatalogUpdate(
            name=name,
            old_fingerprint=entry.fingerprint,
            fingerprint=updated.fingerprint,
            version=updated.version,
            incremental=incremental,
            pools_invalidated=pools_invalidated,
        )

    def unregister(self, name: str) -> None:
        """Drop a graph and every engine prepared for it."""
        with self._lock:
            self._entries.pop(name, None)
            for key in [key for key in self._engines if key[0] == name]:
                del self._engines[key]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        """Registered graph names, in registration order."""
        with self._lock:
            return list(self._entries)

    def entry(self, name: str) -> CatalogEntry:
        """The catalog entry for ``name``; raises for unknown names."""
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            known = ", ".join(repr(key) for key in self.names()) or "none"
            raise ConfigurationError(
                f"unknown graph {name!r}; registered graphs: {known}"
            )
        return entry

    def engine(
        self, name: str, config: Optional[EstimatorConfig] = None
    ) -> ReliabilityEngine:
        """The prepared engine serving ``name`` under ``config``.

        One engine exists per ``(graph name, config fingerprint)``; it is
        created and ``prepare()``-d on first use, so its decomposition
        index and world pools are shared by every later request.
        """
        entry = self.entry(name)
        config = self._normalize_config(config) if config is not None else self._config
        key = (name, config.fingerprint())
        with self._lock:
            engine = self._engines.get(key)
        if engine is None:
            # Prepare outside the lock: decomposing a large graph can take
            # seconds and must not stall lookups on other graphs (or the
            # health probe).  Racing builders may duplicate the work once;
            # setdefault keeps the first engine so the key stays unique.
            built = ReliabilityEngine(config).prepare(entry.graph)
            with self._lock:
                engine = self._engines.setdefault(key, built)
        return engine

    def adopt_engine(self, name: str, engine: ReliabilityEngine) -> None:
        """Install a prepared engine as ``name``'s engine for its config.

        The snapshot loader uses this to hand the catalog an engine whose
        decomposition index and world pools were restored from disk, so
        the usual lazy ``prepare()`` in :meth:`engine` never runs.  The
        engine's config must fingerprint-match this catalog's default
        config — that pair is the cache key every served answer depends
        on.
        """
        fingerprint = engine.config.fingerprint()
        if fingerprint != self._config.fingerprint():
            raise ConfigurationError(
                f"engine config fingerprint {fingerprint!r} does not match "
                f"the catalog's {self._config.fingerprint()!r}; an adopted "
                "engine must serve exactly the catalog's default config"
            )
        self.entry(name)  # raises for unknown names
        with self._lock:
            self._engines[(name, fingerprint)] = engine

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def save_snapshot(self, path: str, *, include_pools: bool = True) -> Dict:
        """Write this catalog's prepared state to the directory ``path``.

        See :mod:`repro.service.snapshot` for the on-disk format.  Returns
        the written catalog manifest.
        """
        from repro.service.snapshot import save_catalog_snapshot

        return save_catalog_snapshot(self, path, include_pools=include_pools)

    @classmethod
    def load_snapshot(cls, path: str, *, verify: bool = False) -> "GraphCatalog":
        """Rebuild a catalog — graphs registered, engines warm — from ``path``.

        With ``verify=True`` the snapshot's probe workload is re-evaluated
        and checksum-compared before the catalog is returned.  Raises
        :class:`~repro.exceptions.SnapshotError` on any corruption,
        version mismatch, or divergence.
        """
        from repro.service.snapshot import load_catalog_snapshot

        return load_catalog_snapshot(path, verify=verify)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> List[Dict[str, object]]:
        """JSON-safe summaries of every entry (the ``/graphs`` payload)."""
        with self._lock:
            entries = list(self._entries.values())
        return [entry.describe() for entry in entries]

    def engine_stats(self) -> Dict[str, Dict[str, Dict[str, int]]]:
        """Per-graph, per-config engine counters (the ``/stats`` payload).

        Shape: ``{graph name: {config fingerprint: EngineStats dict}}``,
        including the ``world_pools_evicted`` counter.
        """
        import dataclasses

        with self._lock:
            engines = dict(self._engines)
        stats: Dict[str, Dict[str, Dict[str, int]]] = {}
        for (name, config_key), engine in engines.items():
            stats.setdefault(name, {})[config_key] = dataclasses.asdict(engine.stats)
        return stats
