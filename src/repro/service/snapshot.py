"""Warm snapshots: a catalog's prepared state, serialized exactly.

Preparing a graph for serving is the expensive part of a cold start: the
2-edge-connected decomposition, the compiled kernel form, and — dominant
for sampling configs — the shared world pools.  Every piece of that state
is deterministic by construction (int-seeded configs, chunk-seeded pools,
fingerprint-stamped caches), so it can be written to disk once and
reloaded bit-identically by any process: a replica warm-starting from a
snapshot answers every query with exactly the checksum a fresh
``prepare()`` would produce.  That property is what lets the cluster layer
(:mod:`repro.cluster`) fan one catalog out to N shared-nothing replicas
without giving up the checksum-parity guarantees CI enforces.

On-disk format (version :data:`SNAPSHOT_FORMAT_VERSION`)
---------------------------------------------------------
A snapshot is a directory::

    <dir>/catalog.json                 # version, config, entry listing
    <dir>/<gfp[:16]>-<cfp[:16]>/       # one per (graph, config) pair
        manifest.json                  # version, fingerprints, section
                                       #   sha256 checksums, probe checksum
        graph.json                     # vertices (iteration order) + edges
        index.json                     # the 2ECC decomposition
        compiled.json                  # CompiledGraph arrays (cross-check)
        pools.json                     # world-pool metadata (seed, samples)
        pools.bin                      # the pools' labels, packed int32

Every structured section is JSON: human-inspectable, diffable, and
checksummable.  The one deliberate exception is the world-label payload:
a default pool is ``samples × |V|`` small ints, and parsing hundreds of
thousands of JSON integers dominated warm-start time — defeating the
point of a snapshot.  The labels therefore live in ``pools.bin`` as a
flat little-endian int32 array in the pool's native *column-major*
layout (all of vertex 0's per-world labels, then vertex 1's, ...; pools
concatenated in ``pools.json`` order), which loads in one
``array.frombytes`` and is adopted without a transpose.  Each section
file's SHA-256 — binary payload included — is recorded in its manifest
and verified on load, so a flipped bit fails loudly
(:class:`~repro.exceptions.SnapshotError`) instead of silently serving
wrong answers; the rebuilt graph is additionally re-fingerprinted against
the recorded content fingerprint, and the compiled arrays are compared
against a fresh compile of the rebuilt graph.  The manifest also records a **probe checksum** — a
:func:`~repro.engine.parallel.results_checksum` over a small query
workload evaluated at save time — which ``load_catalog_snapshot(...,
verify=True)`` re-evaluates to prove the warm engine is bit-identical to
the one that wrote the snapshot.

Compatibility: a snapshot written by a different format version is
rejected with an actionable error (rebuild with
:meth:`GraphCatalog.save_snapshot`); the format version only changes when
the layout or the meaning of a section changes.  Vertex labels must be
JSON-safe (ints or strings — every dataset loader and generator complies);
exotic hashable labels are rejected at save time.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from array import array
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.engine.config import EstimatorConfig
from repro.engine.engine import ReliabilityEngine
from repro.engine.parallel import results_checksum
from repro.engine.queries import KTerminalQuery, Query, ThresholdQuery, query_from_dict
from repro.engine.worlds import WORLD_CHUNK_SIZE, WorldPool
from repro.exceptions import SnapshotError
from repro.graph.compiled import compile_graph
from repro.graph.components import GraphDecomposition
from repro.graph.uncertain_graph import UncertainGraph

if TYPE_CHECKING:
    from repro.service.catalog import CatalogEntry, GraphCatalog

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "load_catalog_snapshot",
    "save_catalog_snapshot",
    "snapshot_entries",
]

#: Version stamp of the on-disk layout.  Bump whenever a section's shape
#: or meaning changes; loaders reject any other version with instructions
#: to rebuild, never a best-effort parse.
SNAPSHOT_FORMAT_VERSION = 1

_CATALOG_FILE = "catalog.json"
_MANIFEST_FILE = "manifest.json"
_JSON_SECTIONS = ("graph.json", "index.json", "compiled.json", "pools.json")
_POOLS_BLOB = "pools.bin"
_SECTION_FILES = _JSON_SECTIONS + (_POOLS_BLOB,)


# ----------------------------------------------------------------------
# Small helpers
# ----------------------------------------------------------------------
def _dump(payload: Any) -> bytes:
    """Canonical JSON bytes: stable separators, unsorted (order matters)."""
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def _sha256(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


def _write_blob(directory: str, filename: str, blob: bytes) -> str:
    """Write one section file's raw bytes; returns its recorded checksum."""
    with open(os.path.join(directory, filename), "wb") as handle:
        handle.write(blob)
    return _sha256(blob)


def _write_section(directory: str, filename: str, payload: Any) -> str:
    """Write one JSON section file; returns its recorded checksum."""
    return _write_blob(directory, filename, _dump(payload))


def _read_blob(path: str, *, expected_sha: Optional[str] = None) -> bytes:
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except FileNotFoundError:
        raise SnapshotError(
            f"snapshot section {path!r} is missing; the snapshot is "
            "incomplete — rebuild it with GraphCatalog.save_snapshot()"
        ) from None
    if expected_sha is not None and _sha256(blob) != expected_sha:
        raise SnapshotError(
            f"snapshot section {path!r} does not match its recorded "
            "checksum; the file is corrupted or was edited — rebuild the "
            "snapshot with GraphCatalog.save_snapshot()"
        )
    return blob


def _read_json(path: str, *, expected_sha: Optional[str] = None) -> Any:
    blob = _read_blob(path, expected_sha=expected_sha)
    try:
        return json.loads(blob.decode("utf-8"))
    except ValueError as error:
        raise SnapshotError(
            f"snapshot section {path!r} is not valid JSON ({error}); "
            "rebuild the snapshot with GraphCatalog.save_snapshot()"
        ) from None


def _check_version(version: Any, path: str) -> None:
    if version != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot {path!r} uses format version {version!r} but this "
            f"library reads version {SNAPSHOT_FORMAT_VERSION}; rebuild the "
            "snapshot with GraphCatalog.save_snapshot() from this version"
        )


def _json_safe_label(label: Any, *, graph_name: str) -> Any:
    if isinstance(label, bool) or not isinstance(label, (int, str)):
        raise SnapshotError(
            f"graph {graph_name!r} has vertex label {label!r} of type "
            f"{type(label).__name__}; snapshots require JSON-safe labels "
            "(int or str)"
        )
    return label


# ----------------------------------------------------------------------
# Sections: build / restore
# ----------------------------------------------------------------------
def _graph_section(graph: UncertainGraph) -> Dict[str, Any]:
    name = graph.name or ""
    return {
        # Vertex iteration order is part of the determinism contract
        # (sampled world labellings index vertices by it), so it is
        # recorded explicitly rather than re-derived from the edges.
        "name": name,
        "vertices": [
            _json_safe_label(vertex, graph_name=name) for vertex in graph.vertices()
        ],
        "edges": [
            [edge.id, edge.u, edge.v, edge.probability] for edge in graph.edges()
        ],
    }


def _restore_graph(payload: Dict[str, Any]) -> UncertainGraph:
    graph = UncertainGraph(name=payload.get("name", ""))
    for vertex in payload["vertices"]:
        graph.add_vertex(vertex)
    for edge_id, u, v, probability in payload["edges"]:
        graph.add_edge(u, v, probability, edge_id=edge_id)
    return graph


def _index_section(decomposition: GraphDecomposition) -> Dict[str, Any]:
    return {
        "bridges": sorted(decomposition.bridges),
        "articulation_points": list(decomposition.articulation_points),
        # Component order is preserved verbatim: component indices appear
        # in `component_of` and the bridge tree, so a reordered load would
        # be a *different* (if isomorphic) index.
        "components": [list(component) for component in decomposition.components],
    }


def _restore_index(payload: Dict[str, Any]) -> GraphDecomposition:
    components = tuple(frozenset(members) for members in payload["components"])
    component_of: Dict[Any, int] = {}
    for index, component in enumerate(components):
        for vertex in component:
            component_of[vertex] = index
    return GraphDecomposition(
        bridges=frozenset(payload["bridges"]),
        articulation_points=frozenset(payload["articulation_points"]),
        components=components,
        component_of=component_of,
    )


def _compiled_section(graph: UncertainGraph) -> Dict[str, Any]:
    compiled = compile_graph(graph)
    return {
        "edge_u": list(compiled.edge_u),
        "edge_v": list(compiled.edge_v),
        "edge_probability": list(compiled.edge_probability),
        "csr_indptr": list(compiled.csr_indptr),
        "csr_vertices": list(compiled.csr_vertices),
        "csr_edges": list(compiled.csr_edges),
    }


def _check_compiled(graph: UncertainGraph, payload: Dict[str, Any], path: str) -> None:
    """Compare the stored kernel arrays against a fresh compile.

    The compiled form is a pure function of the graph, so recompiling the
    rebuilt graph is both the cheapest way to restore it *and* an
    independent integrity check of the graph section: any divergence means
    the snapshot no longer describes the graph it claims to.
    """
    if _compiled_section(graph) != payload:
        raise SnapshotError(
            f"snapshot section {path!r} does not match the compiled form "
            "of the stored graph; the snapshot is internally inconsistent "
            "— rebuild it with GraphCatalog.save_snapshot()"
        )


def _labels_to_bytes(arr: array) -> bytes:
    """Serialize an int32 label array as little-endian bytes."""
    if sys.byteorder == "big":  # pragma: no cover - no big-endian CI host
        arr = array(arr.typecode, arr)
        arr.byteswap()
    return arr.tobytes()


def _labels_from_bytes(blob: bytes, path: str) -> array:
    arr = array("i")
    if arr.itemsize != 4:  # pragma: no cover - int is 32-bit on CPython
        arr = array("l")
    try:
        arr.frombytes(blob)
    except ValueError:
        raise SnapshotError(
            f"snapshot section {path!r} is not a whole number of int32 "
            "labels; the file is truncated or corrupted — rebuild the "
            "snapshot with GraphCatalog.save_snapshot()"
        ) from None
    if sys.byteorder == "big":  # pragma: no cover - no big-endian CI host
        arr.byteswap()
    return arr


def _pools_section(
    engine: ReliabilityEngine, graph: UncertainGraph
) -> Tuple[Dict[str, Any], bytes]:
    """The pools' (JSON metadata, packed label bytes) pair.

    The metadata carries everything needed to slice ``pools.bin`` back
    into pools: each pool occupies ``samples * vertices`` consecutive
    int32 labels, column-major, in listing order.
    """
    pools = []
    payload = bytearray()
    for pool in engine.cached_world_pools(graph):
        if pool.seed is None:  # pragma: no cover - engine never caches these
            continue
        labels = array("i")
        for column in pool.columns:
            labels.extend(column)
        payload += _labels_to_bytes(labels)
        pools.append(
            {
                "seed": pool.seed,
                "samples": pool.num_worlds,
                "vertices": pool.num_vertices,
                "chunk_size": WORLD_CHUNK_SIZE,
            }
        )
    return {"pools": pools}, bytes(payload)


def _restore_pools(
    engine: ReliabilityEngine,
    graph: UncertainGraph,
    payload: Dict[str, Any],
    blob: bytes,
    path: str,
    blob_path: str,
) -> int:
    labels = _labels_from_bytes(blob, blob_path)
    offset = 0
    restored = 0
    for pool in payload["pools"]:
        if pool.get("chunk_size") != WORLD_CHUNK_SIZE:
            raise SnapshotError(
                f"snapshot section {path!r} stores world pools with chunk "
                f"size {pool.get('chunk_size')!r} but this library samples "
                f"in chunks of {WORLD_CHUNK_SIZE}; the pools would not "
                "match their seeds — rebuild the snapshot"
            )
        samples, vertices = pool["samples"], pool["vertices"]
        end = offset + samples * vertices
        if end > len(labels):
            raise SnapshotError(
                f"snapshot section {blob_path!r} holds {len(labels)} labels "
                f"but its metadata describes at least {end}; the sections "
                "disagree — rebuild the snapshot with "
                "GraphCatalog.save_snapshot()"
            )
        # Regroup the flat column-major run into per-vertex columns: each
        # consecutive span of `samples` ints is one vertex's column.
        # tuple(array-slice) stays in C; this regroup is the hottest part
        # of a warm start, the very thing the binary layout exists for.
        columns = [
            tuple(labels[start : start + samples])
            for start in range(offset, end, samples)
        ]
        offset = end
        engine._adopt_pool(
            graph,
            WorldPool.from_columns(
                graph, columns, samples=samples, seed=pool["seed"]
            ),
        )
        restored += 1
    if offset != len(labels):
        raise SnapshotError(
            f"snapshot section {blob_path!r} holds {len(labels)} labels but "
            f"its metadata describes {offset}; the sections disagree — "
            "rebuild the snapshot with GraphCatalog.save_snapshot()"
        )
    return restored


def _probe_queries(graph: UncertainGraph) -> List[Query]:
    """A tiny deterministic workload exercising pool and backend paths."""
    vertices = list(graph.vertices())
    terminals = tuple(vertices[: min(3, len(vertices))])
    queries: List[Query] = [KTerminalQuery(terminals=terminals)]
    if len(terminals) >= 2:
        queries.append(ThresholdQuery(terminals=terminals[:2], threshold=0.5))
    return queries


def _probe_checksum(engine: ReliabilityEngine, graph: UncertainGraph) -> Dict[str, Any]:
    queries = _probe_queries(graph)
    results = [engine.query(query, graph=graph, seed_index=0) for query in queries]
    return {
        "queries": [query.to_dict() for query in queries],
        "checksum": results_checksum(results),
    }


# ----------------------------------------------------------------------
# Save
# ----------------------------------------------------------------------
def save_catalog_snapshot(
    catalog: "GraphCatalog", path: str, *, include_pools: bool = True
) -> Dict[str, Any]:
    """Write ``catalog``'s prepared state under ``path``; returns the manifest.

    Every registered graph is prepared (if it was not already) under the
    catalog's default config and serialized together with its 2ECC index,
    compiled arrays, and cached world pools.  With ``include_pools`` (the
    default) the session's default pool — the one every pooled query of
    the service reads — is built before saving, so a replica loading the
    snapshot starts with the expensive sampling pass already done.
    """
    os.makedirs(path, exist_ok=True)
    config = catalog.config
    config_fingerprint = config.fingerprint()
    entries_payload: List[Dict[str, Any]] = []
    written: Dict[str, str] = {}
    for name in catalog.names():
        entry = catalog.entry(name)
        directory = f"{entry.fingerprint[:16]}-{config_fingerprint[:16]}"
        if directory not in written:
            engine = catalog.engine(name)
            _write_entry_snapshot(
                os.path.join(path, directory),
                entry,
                engine,
                config_fingerprint,
                include_pools=include_pools,
            )
            written[directory] = entry.fingerprint
        entries_payload.append(
            {
                "name": name,
                "fingerprint": entry.fingerprint,
                "source": entry.source,
                "directory": directory,
            }
        )
    manifest = {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "created": time.time(),
        "config": config.to_dict(),
        "config_fingerprint": config_fingerprint,
        "entries": entries_payload,
    }
    with open(os.path.join(path, _CATALOG_FILE), "wb") as handle:
        handle.write(_dump(manifest))
    return manifest


def _write_entry_snapshot(
    directory: str,
    entry: "CatalogEntry",
    engine: ReliabilityEngine,
    config_fingerprint: str,
    *,
    include_pools: bool,
) -> None:
    os.makedirs(directory, exist_ok=True)
    graph = entry.graph
    if include_pools:
        # Ensure the session's default pool exists: it is the pool every
        # pooled service query reads, so a warm start without it would
        # still pay the dominant sampling cost on the first request.
        engine.world_pool(graph)
    pools_meta, pools_blob = _pools_section(engine, graph)
    sections = {
        "graph.json": _graph_section(graph),
        "index.json": _index_section(engine.decomposition(graph)),
        "compiled.json": _compiled_section(graph),
        "pools.json": pools_meta,
    }
    checksums = {
        filename: _write_section(directory, filename, payload)
        for filename, payload in sections.items()
    }
    checksums[_POOLS_BLOB] = _write_blob(directory, _POOLS_BLOB, pools_blob)
    manifest = {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "created": time.time(),
        "graph_fingerprint": entry.fingerprint,
        "config_fingerprint": config_fingerprint,
        "sections": checksums,
        "probe": _probe_checksum(engine, graph),
    }
    with open(os.path.join(directory, _MANIFEST_FILE), "wb") as handle:
        handle.write(_dump(manifest))


# ----------------------------------------------------------------------
# Load
# ----------------------------------------------------------------------
def snapshot_entries(path: str) -> List[Dict[str, Any]]:
    """The entry listing of the snapshot at ``path`` (name, fingerprint, ...).

    Cheap: reads only ``catalog.json``.  The cluster router uses this to
    know every graph's content fingerprint without starting an engine.
    """
    manifest = _read_json(os.path.join(path, _CATALOG_FILE))
    _check_version(manifest.get("format_version"), os.path.join(path, _CATALOG_FILE))
    return list(manifest["entries"])


def load_catalog_snapshot(path: str, *, verify: bool = False) -> "GraphCatalog":
    """Rebuild a :class:`GraphCatalog` from the snapshot at ``path``.

    Every entry comes back *prepared*: decomposition index adopted,
    compiled form cross-checked against the stored arrays, and world pools
    installed — a warm start that answers its first query without any
    preprocessing.  With ``verify=True`` the recorded probe workload is
    re-evaluated and its :func:`~repro.engine.parallel.results_checksum`
    compared against the one written at save time, proving bit-identity
    before the catalog serves anything.

    Raises
    ------
    SnapshotError
        For missing/corrupted/tampered sections, format-version
        mismatches, fingerprint divergence, or (``verify=True``) a probe
        checksum mismatch.  Every message says which file is at fault.
    """
    from repro.service.catalog import GraphCatalog, graph_fingerprint

    catalog_path = os.path.join(path, _CATALOG_FILE)
    manifest = _read_json(catalog_path)
    _check_version(manifest.get("format_version"), catalog_path)
    try:
        config = EstimatorConfig.from_dict(manifest["config"])
    except Exception as error:
        raise SnapshotError(
            f"snapshot {catalog_path!r} holds an unusable config ({error}); "
            "rebuild the snapshot with GraphCatalog.save_snapshot()"
        ) from None
    catalog = GraphCatalog(config)
    config_fingerprint = catalog.config.fingerprint()
    if config_fingerprint != manifest.get("config_fingerprint"):
        raise SnapshotError(
            f"snapshot {catalog_path!r} records config fingerprint "
            f"{manifest.get('config_fingerprint')!r} but its config payload "
            f"fingerprints to {config_fingerprint!r}; the file is corrupted "
            "— rebuild the snapshot with GraphCatalog.save_snapshot()"
        )

    engines: Dict[str, ReliabilityEngine] = {}
    graphs: Dict[str, UncertainGraph] = {}
    for entry in manifest["entries"]:
        directory = os.path.join(path, entry["directory"])
        if entry["directory"] not in engines:
            graph, engine = _load_entry_snapshot(
                directory,
                expected_fingerprint=entry["fingerprint"],
                config=catalog.config,
                fingerprint_fn=graph_fingerprint,
                verify=verify,
            )
            engines[entry["directory"]] = engine
            graphs[entry["directory"]] = graph
        catalog.register(
            entry["name"], graphs[entry["directory"]], label=entry.get("source", "snapshot")
        )
        catalog.adopt_engine(entry["name"], engines[entry["directory"]])
    return catalog


def _load_entry_snapshot(
    directory: str,
    *,
    expected_fingerprint: str,
    config: EstimatorConfig,
    fingerprint_fn,
    verify: bool,
):
    manifest_path = os.path.join(directory, _MANIFEST_FILE)
    manifest = _read_json(manifest_path)
    _check_version(manifest.get("format_version"), manifest_path)
    checksums = manifest.get("sections", {})
    for filename in _SECTION_FILES:
        if filename not in checksums:
            raise SnapshotError(
                f"snapshot manifest {manifest_path!r} records no checksum "
                f"for section {filename!r}; the snapshot is incomplete — "
                "rebuild it with GraphCatalog.save_snapshot()"
            )
    sections = {
        filename: _read_json(
            os.path.join(directory, filename), expected_sha=checksums[filename]
        )
        for filename in _JSON_SECTIONS
    }
    pools_blob = _read_blob(
        os.path.join(directory, _POOLS_BLOB), expected_sha=checksums[_POOLS_BLOB]
    )

    graph = _restore_graph(sections["graph.json"])
    rebuilt_fingerprint = fingerprint_fn(graph)
    if rebuilt_fingerprint != expected_fingerprint or rebuilt_fingerprint != manifest.get(
        "graph_fingerprint"
    ):
        raise SnapshotError(
            f"graph rebuilt from {directory!r} fingerprints to "
            f"{rebuilt_fingerprint!r}, not the recorded "
            f"{expected_fingerprint!r}; the snapshot no longer matches its "
            "catalog listing — rebuild it with GraphCatalog.save_snapshot()"
        )
    _check_compiled(graph, sections["compiled.json"], os.path.join(directory, "compiled.json"))

    decomposition = _restore_index(sections["index.json"])
    engine = ReliabilityEngine(config).prepare(graph, decomposition)
    _restore_pools(
        engine,
        graph,
        sections["pools.json"],
        pools_blob,
        os.path.join(directory, "pools.json"),
        os.path.join(directory, _POOLS_BLOB),
    )

    if verify:
        probe = manifest.get("probe", {})
        queries = [query_from_dict(payload) for payload in probe.get("queries", [])]
        results = [engine.query(query, graph=graph, seed_index=0) for query in queries]
        checksum = results_checksum(results)
        if checksum != probe.get("checksum"):
            raise SnapshotError(
                f"probe workload of snapshot {directory!r} evaluates to "
                f"checksum {checksum} but the snapshot recorded "
                f"{probe.get('checksum')!r}; the warm state is not "
                "bit-identical to the saved session — rebuild the snapshot"
            )
    return graph, engine
