"""A small blocking client for the service's JSON/HTTP protocol.

:class:`ServiceClient` wraps :mod:`http.client` (stdlib only, one
connection per call — the server closes connections after each response)
and translates the wire format back into typed objects:
``query`` / ``query_batch`` accept :class:`~repro.engine.queries.Query`
objects (or their ``to_dict`` forms) and return
:class:`ServiceResponse` values whose ``result`` is rebuilt through
:func:`~repro.engine.queries.result_from_dict`.

Example
-------
>>> from repro.service import ServiceClient
>>> from repro.engine.queries import KTerminalQuery
>>> client = ServiceClient("127.0.0.1", 8350)            # doctest: +SKIP
>>> answer = client.query("karate", KTerminalQuery(terminals=(1, 34)))  # doctest: +SKIP
>>> answer.result.reliability, answer.cached             # doctest: +SKIP
(0.63, False)
"""

from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.engine.deltas import DeltaOp
from repro.engine.queries import Query, QueryResult, result_from_dict
from repro.exceptions import ReproError
from repro.obs.trace import TRACE_HEADER

__all__ = [
    "ServiceClient",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceResponse",
]

QueryLike = Union[Query, Mapping[str, Any]]
DeltaLike = Union[DeltaOp, Mapping[str, Any]]


class ServiceError(ReproError):
    """The server answered with an error status.

    Attributes
    ----------
    status:
        The HTTP status code.
    payload:
        The decoded JSON error body (``{}`` when undecodable).
    """

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        self.status = status
        self.payload = payload
        super().__init__(
            f"service answered {status}: {payload.get('error', payload)!r}"
        )


class ServiceOverloadedError(ServiceError):
    """The server shed this request (HTTP 429); retry after a backoff.

    Attributes
    ----------
    retry_after:
        The server's ``Retry-After`` hint in seconds, or ``None`` when the
        header was absent or unparseable.  :class:`ServiceClient` honors
        it when retries are enabled.
    """

    def __init__(
        self,
        status: int,
        payload: Dict[str, Any],
        *,
        retry_after: Optional[float] = None,
    ) -> None:
        self.retry_after = retry_after
        super().__init__(status, payload)


@dataclass
class ServiceResponse:
    """One answered query: the typed result plus serving metadata."""

    graph: str
    kind: str
    cached: bool
    checksum: str
    result: QueryResult
    raw: Dict[str, Any] = field(repr=False, default_factory=dict)

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ServiceResponse":
        return cls(
            graph=payload["graph"],
            kind=payload["kind"],
            cached=bool(payload.get("cached", False)),
            checksum=payload["checksum"],
            result=result_from_dict(payload["result"]),
            raw=payload,
        )


class ServiceClient:
    """Blocking client of one service endpoint.

    Parameters
    ----------
    host / port:
        The server address (e.g. from ``ServiceServer.port``).
    timeout:
        Per-request socket timeout in seconds.
    max_retries:
        How many times a request shed with 429 is retried before the
        :class:`ServiceOverloadedError` propagates.  ``0`` (the default)
        keeps the historical fail-fast behavior — retrying is opt-in
        because it can amplify load on an already saturated server; the
        cluster client turns it on, where the router's replica pool makes
        a short wait productive.
    backoff:
        Base of the exponential backoff: retry ``i`` waits
        ``backoff * 2**i`` seconds — unless the server's ``Retry-After``
        header names a longer wait, which takes precedence (the server
        knows its queue depth; the client is guessing).
    max_backoff:
        Upper bound on any single wait, whatever its source.
    sleep:
        Injectable sleep function, for tests.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8350,
        *,
        timeout: float = 300.0,
        max_retries: int = 0,
        backoff: float = 0.05,
        max_backoff: float = 2.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries!r}")
        self._host = host
        self._port = port
        self._timeout = timeout
        self._max_retries = max_retries
        self._backoff = backoff
        self._max_backoff = max_backoff
        self._sleep = sleep

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        """The liveness payload of ``GET /healthz``."""
        return self._request("GET", "/healthz")

    def graphs(self) -> List[Dict[str, Any]]:
        """The catalog summaries of ``GET /graphs``."""
        return self._request("GET", "/graphs")["graphs"]

    def stats(self) -> Dict[str, Any]:
        """The counters of ``GET /stats``."""
        return self._request("GET", "/stats")

    def metrics(self) -> str:
        """The Prometheus text exposition of ``GET /metrics``."""
        return self._request("GET", "/metrics")

    def query(
        self,
        graph: str,
        query: QueryLike,
        *,
        timings: bool = False,
        trace_id: Optional[str] = None,
    ) -> ServiceResponse:
        """Answer one query on the named graph.

        ``timings=True`` asks the server for the per-stage ``"timings"``
        section (available on ``response.raw["timings"]``); ``trace_id``
        pins the request's trace id — propagated in the
        ``X-Repro-Trace`` header, so one id follows the request across
        hops.
        """
        body = {"graph": graph, "query": _query_dict(query)}
        if timings:
            body["timings"] = True
        headers = {TRACE_HEADER: trace_id} if trace_id else None
        payload = self._request("POST", "/query", body, extra_headers=headers)
        return ServiceResponse.from_payload(payload)

    def query_batch(
        self, graph: str, queries: Sequence[QueryLike]
    ) -> List[Union[ServiceResponse, Dict[str, Any]]]:
        """Answer a batch; failed items come back as their error dicts."""
        payload = self._request(
            "POST",
            "/query_batch",
            {"graph": graph, "queries": [_query_dict(query) for query in queries]},
        )
        outcomes: List[Union[ServiceResponse, Dict[str, Any]]] = []
        for item in payload["results"]:
            if "error" in item:
                outcomes.append(item)
            else:
                outcomes.append(ServiceResponse.from_payload(item))
        return outcomes

    def update(self, graph: str, delta: DeltaLike) -> Dict[str, Any]:
        """Apply a typed graph delta through ``POST /update``.

        Accepts any :mod:`repro.engine.deltas` value or its ``to_dict``
        wire form; returns the server's update payload (old/new
        fingerprint, version, ``incremental`` flag, invalidation counts).

        Deliberately *not* retried on 429, unlike every other endpoint:
        an update is not idempotent (an ``add-edge`` without a pinned
        ``edge_id`` allocates a fresh id per application), and a shed
        request gives no signal about whether it was applied.  A 403
        (read-only replica) surfaces as a :class:`ServiceError`.
        """
        return self._request_once(
            "POST", "/update", {"graph": graph, "delta": _delta_dict(delta)}
        )

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        *,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> Any:
        """One logical request: a 429 is retried up to ``max_retries`` times.

        Safe to retry unconditionally: every endpoint routed through here
        is idempotent (the service's answers are pure functions of the
        request), so a shed request repeated is the same request.
        :meth:`update` is the exception — it calls ``_request_once``
        directly because applying a delta twice is not applying it once.
        """
        for attempt in range(self._max_retries + 1):
            try:
                return self._request_once(
                    method, path, body, extra_headers=extra_headers
                )
            except ServiceOverloadedError as error:
                if attempt >= self._max_retries:
                    raise
                wait = self._backoff * (2 ** attempt)
                if error.retry_after is not None:
                    wait = max(wait, error.retry_after)
                self._sleep(min(max(wait, 0.0), self._max_backoff))
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_once(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        *,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> Any:
        connection = http.client.HTTPConnection(
            self._host, self._port, timeout=self._timeout
        )
        try:
            blob = json.dumps(body).encode("utf-8") if body is not None else None
            headers = {"Content-Type": "application/json"} if blob else {}
            if extra_headers:
                headers.update(extra_headers)
            connection.request(method, path, body=blob, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            text = raw.decode("utf-8", "replace")
            content_type = response.getheader("Content-Type", "")
            if response.status == 200 and not content_type.startswith(
                "application/json"
            ):
                return text  # /metrics answers Prometheus text, not JSON
            try:
                payload = json.loads(raw.decode("utf-8"))
            except ValueError:
                payload = {"error": text}
            if response.status == 429:
                raise ServiceOverloadedError(
                    response.status,
                    payload,
                    retry_after=_parse_retry_after(
                        response.getheader("Retry-After")
                    ),
                )
            if response.status != 200:
                raise ServiceError(response.status, payload)
            return payload
        finally:
            connection.close()


def _parse_retry_after(header: Optional[str]) -> Optional[float]:
    """The ``Retry-After`` header as non-negative seconds, else ``None``.

    Only the delta-seconds form is parsed (it is all the server sends);
    the HTTP-date form and garbage both fall back to the client's own
    backoff schedule.
    """
    if header is None:
        return None
    try:
        seconds = float(header.strip())
    except ValueError:
        return None
    return seconds if seconds >= 0 else None


def _query_dict(query: QueryLike) -> Dict[str, Any]:
    if isinstance(query, Query):
        return query.to_dict()
    return dict(query)


def _delta_dict(delta: DeltaLike) -> Dict[str, Any]:
    if isinstance(delta, DeltaOp):
        return delta.to_dict()
    return dict(delta)
