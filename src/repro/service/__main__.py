"""Command-line entry point of the query service.

Usage::

    python -m repro.service --port 8350 --graphs karate
    python -m repro.service --graphs karate,tokyo --backend sampling \
        --samples 1000 --workers 2
    python -m repro.service --graph-file mygraph=edges.txt --port 0
    python -m repro.service --snapshot snap/ --shared-store results.sqlite

(Installed as the ``repro-serve`` console script.)  ``--port 0`` binds an
ephemeral port; the bound address is printed either way, so wrappers (the
CI smoke job, the benchmark, the cluster supervisor) can parse it from
the first stdout line.

``--snapshot DIR`` warm-starts from a prepared-state snapshot (see
:mod:`repro.service.snapshot`) instead of loading and preparing datasets;
the snapshot carries its own config, so ``--graphs``/``--backend``/
``--samples``/``--seed`` are rejected alongside it.  ``--shared-store
PATH`` adds the persistent sqlite result tier under the memory cache —
the combination is exactly how :mod:`repro.cluster` launches replicas.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from typing import List, Optional

from repro.datasets import available_datasets
from repro.engine.config import EstimatorConfig
from repro.engine.registry import available_backends
from repro.exceptions import ReproError
from repro.service.cache import DEFAULT_MAX_BYTES, ResultCache
from repro.service.catalog import DatasetSource, FileSource, GraphCatalog
from repro.obs.trace import SlowQueryLog, disable as disable_tracing
from repro.service.core import ReliabilityService
from repro.service.server import ServiceServer
from repro.service.store import SharedResultStore

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve reliability queries over JSON/HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8350, help="bind port (0 for ephemeral)"
    )
    parser.add_argument(
        "--graphs",
        default="karate",
        metavar="KEYS",
        help=(
            "comma-separated dataset keys to register "
            f"(available: {', '.join(available_datasets())})"
        ),
    )
    parser.add_argument(
        "--graph-file",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="register an edge-list file under NAME (repeatable)",
    )
    parser.add_argument(
        "--snapshot",
        default=None,
        metavar="DIR",
        help=(
            "warm-start from a prepared-state snapshot directory "
            "(GraphCatalog.save_snapshot); carries its own config, so "
            "--graphs/--backend/--samples/--seed cannot be combined with it"
        ),
    )
    parser.add_argument(
        "--shared-store",
        default=None,
        metavar="PATH",
        help=(
            "sqlite file of the persistent shared result tier under the "
            "memory cache (default: no shared tier)"
        ),
    )
    parser.add_argument(
        "--scale", choices=["bench", "paper"], default="bench",
        help="dataset scale for --graphs",
    )
    parser.add_argument(
        "--backend",
        default="sampling",
        metavar="NAME",
        help=f"reliability backend (registered: {', '.join(available_backends())})",
    )
    parser.add_argument("--samples", type=int, default=1_000, help="sample budget s")
    parser.add_argument(
        "--seed", type=int, default=None,
        help="engine seed (default: the service's pinned deterministic seed)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes each micro-batch is sharded over",
    )
    parser.add_argument(
        "--max-batch", type=int, default=64, help="largest micro-batch size"
    )
    parser.add_argument(
        "--cache-bytes", type=int, default=DEFAULT_MAX_BYTES,
        help="result-cache byte budget (0 disables caching)",
    )
    parser.add_argument(
        "--cache-ttl", type=float, default=None,
        help="result-cache TTL in seconds (default: no expiry)",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=8,
        help="query requests evaluated concurrently",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=32,
        help="accepted-but-waiting requests beyond --max-inflight (then 429)",
    )
    parser.add_argument(
        "--allow-updates",
        action="store_true",
        help=(
            "accept POST /update graph deltas; on by default unless "
            "--snapshot is given (snapshot-warmed replicas serve read-only, "
            "since an in-place update would diverge siblings warmed from "
            "the same snapshot)"
        ),
    )
    parser.add_argument(
        "--slow-query-log", type=float, default=None, metavar="SECONDS",
        help=(
            "warn on queries slower than SECONDS and keep the most recent "
            "ones in /stats under 'slow_queries' (default: off)"
        ),
    )
    parser.add_argument(
        "--no-tracing",
        action="store_true",
        help=(
            "refuse request tracing process-wide: X-Repro-Trace headers "
            "and 'timings' requests are ignored (answers are unchanged)"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Build the catalog, start the server, serve until interrupted."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.slow_query_log is not None and args.slow_query_log <= 0:
        print(
            f"error: --slow-query-log must be > 0 seconds, got {args.slow_query_log}",
            file=sys.stderr,
        )
        return 2
    if args.no_tracing:
        disable_tracing()
    try:
        if args.snapshot is not None:
            overridden = [
                option
                for option, changed in [
                    ("--graphs", args.graphs != parser.get_default("graphs")),
                    ("--graph-file", bool(args.graph_file)),
                    ("--backend", args.backend != parser.get_default("backend")),
                    ("--samples", args.samples != parser.get_default("samples")),
                    ("--seed", args.seed is not None),
                ]
                if changed
            ]
            if overridden:
                print(
                    "error: --snapshot carries its own graphs and config; "
                    f"drop {', '.join(overridden)}",
                    file=sys.stderr,
                )
                return 2
            catalog = GraphCatalog.load_snapshot(args.snapshot)
        else:
            config = EstimatorConfig(
                backend=args.backend, samples=args.samples, rng=args.seed
            )
            catalog = GraphCatalog(config)
            for key in [key.strip() for key in args.graphs.split(",") if key.strip()]:
                catalog.register(key, DatasetSource(key, scale=args.scale))
            for spec in args.graph_file:
                name, _, path = spec.partition("=")
                if not name or not path:
                    print(f"error: --graph-file expects NAME=PATH, got {spec!r}",
                          file=sys.stderr)
                    return 2
                catalog.register(name, FileSource(path))
        cache = (
            ResultCache(max_bytes=args.cache_bytes, ttl=args.cache_ttl)
            if args.cache_bytes > 0
            else None
        )
        store = (
            SharedResultStore(args.shared_store)
            if args.shared_store is not None
            else None
        )
        # Snapshot-warmed processes are read-only unless explicitly opted
        # in: their prepared state was checksum-verified on load, and an
        # in-place update would diverge replicas warmed from the same
        # snapshot.
        allow_updates = args.allow_updates or args.snapshot is None
        service = ReliabilityService(
            catalog,
            cache=cache,
            store=store,
            batch_workers=args.workers,
            max_batch=args.max_batch,
            allow_updates=allow_updates,
            slow_query_log=(
                SlowQueryLog(args.slow_query_log)
                if args.slow_query_log is not None
                else None
            ),
        )
        server = ServiceServer(
            service,
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            queue_limit=args.queue_limit,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    server.start_background()
    print(
        f"serving {', '.join(catalog.names())} on http://{server.address} "
        f"(backend {catalog.config.backend!r}, s={catalog.config.samples}, "
        f"cache={'off' if cache is None else 'on'}, "
        f"updates={'on' if allow_updates else 'off'}, "
        f"batch workers={args.workers})",
        flush=True,
    )
    if args.snapshot is not None:
        print(f"warm-started from snapshot {args.snapshot}", flush=True)
    if store is not None:
        print(f"shared result store at {store.path}", flush=True)

    stop = threading.Event()

    def _signal_handler(signum, frame) -> None:  # noqa: ARG001
        stop.set()

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, _signal_handler)
        except ValueError:  # not the main thread (embedded use)
            break
    try:
        stop.wait()
    finally:
        server.close()
        service.close()
        if store is not None:
            store.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
