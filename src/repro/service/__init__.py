"""The query-serving subsystem: serve reliability queries to many clients.

Layered on the engine (:mod:`repro.engine`), this package turns the
library into a *service*: many clients, one shared environment of
prepared graphs, with cross-request reuse the engine alone cannot do.

* :mod:`repro.service.catalog` — :class:`GraphCatalog`: named uncertain
  graphs keyed by content fingerprint, each served by one prepared
  :class:`~repro.engine.engine.ReliabilityEngine` per config, so 2ECC
  indexes and world pools are shared across all clients; registration
  takes the typed :data:`~repro.service.catalog.GraphSource` union
  (graph / :class:`DatasetSource` / :class:`FileSource`), and
  :meth:`GraphCatalog.update` applies typed deltas with versioned
  fingerprints and incremental re-prepare,
* :mod:`repro.service.cache` — :class:`ResultCache`: an LRU (+ optional
  TTL), byte-bounded cache keyed by ``(graph fingerprint, query
  canonical key, config fingerprint)``; hits are bit-identical to fresh
  deterministic-seed evaluation,
* :mod:`repro.service.coalesce` — :class:`SingleFlightBatcher`:
  concurrent identical requests share one computation, and distinct
  pending requests for the same graph fold into one
  ``query_many(workers=N)`` micro-batch,
* :mod:`repro.service.core` — :class:`ReliabilityService`: the blocking
  serving facade combining the three,
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  asyncio JSON-over-HTTP front-end (``/query``, ``/query_batch``,
  ``/update``, ``/graphs``, ``/stats``, ``/healthz``, with admission
  control) and its small blocking client,
* :mod:`repro.service.snapshot` — versioned on-disk snapshots of a
  catalog's prepared state (``GraphCatalog.save_snapshot`` /
  ``load_snapshot``): warm starts bit-identical to fresh ``prepare()``,
* :mod:`repro.service.store` — :class:`SharedResultStore`: a persistent
  sqlite tier under the memory cache, shared by replica processes and
  surviving restarts (see :mod:`repro.cluster`).

Run a server from the command line (or the ``repro-serve`` script)::

    python -m repro.service --port 8350 --graphs karate,tokyo --workers 2

Example (in-process)
--------------------
>>> from repro.engine import EstimatorConfig
>>> from repro.engine.queries import KTerminalQuery
>>> from repro.service import DatasetSource, GraphCatalog, ReliabilityService
>>> catalog = GraphCatalog(EstimatorConfig(backend="sampling", samples=300, rng=7))
>>> _ = catalog.register("karate", DatasetSource("karate"))
>>> service = ReliabilityService(catalog)
>>> first = service.query("karate", KTerminalQuery(terminals=(1, 34)))
>>> again = service.query("karate", KTerminalQuery(terminals=(1, 34)))
>>> first["cached"], again["cached"], first["checksum"] == again["checksum"]
(False, True, True)
>>> service.close()
"""

from repro.service.cache import CacheStats, ResultCache, cache_key
from repro.service.catalog import (
    CatalogEntry,
    CatalogUpdate,
    DatasetSource,
    FileSource,
    GraphCatalog,
    GraphSource,
    graph_fingerprint,
)
from repro.service.client import (
    ServiceClient,
    ServiceError,
    ServiceOverloadedError,
    ServiceResponse,
)
from repro.service.coalesce import CoalesceStats, SingleFlightBatcher
from repro.service.core import ReliabilityService, ServiceStats
from repro.service.server import AdmissionStats, ServiceServer
from repro.service.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    load_catalog_snapshot,
    save_catalog_snapshot,
)
from repro.service.store import SharedResultStore, StoreStats

__all__ = [
    "AdmissionStats",
    "CacheStats",
    "CatalogEntry",
    "CatalogUpdate",
    "CoalesceStats",
    "DatasetSource",
    "FileSource",
    "GraphCatalog",
    "GraphSource",
    "ReliabilityService",
    "ResultCache",
    "SNAPSHOT_FORMAT_VERSION",
    "ServiceClient",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceResponse",
    "ServiceServer",
    "ServiceStats",
    "SharedResultStore",
    "SingleFlightBatcher",
    "StoreStats",
    "cache_key",
    "graph_fingerprint",
    "load_catalog_snapshot",
    "save_catalog_snapshot",
]
