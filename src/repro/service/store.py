"""The shared result tier: a persistent sqlite store under the memory cache.

The in-memory :class:`~repro.service.cache.ResultCache` dies with its
process and is private to it.  A scaled-out deployment wants neither:
replicas answering the same deterministic queries should reuse each
other's work, and a restarted replica should not re-pay for everything it
already answered.  :class:`SharedResultStore` is that second tier — a
sqlite file keyed by the same triple as the memory cache::

    (graph fingerprint, query.canonical_key(), config.fingerprint())

Sharing cached answers across processes is safe *only* because of the
service's determinism contract: every value is a pure function of exactly
that key (pinned seed schedule, fingerprinted config), so whichever
replica computed an answer first, every other replica would have computed
the same bytes.  Entries never go stale *under a fixed fingerprint* — a
graph update changes the fingerprint (new writes land under new keys) and
:meth:`SharedResultStore.invalidate_graph` drops the rows of the old one,
so a lost write or failed read merely costs a recomputation.

That shapes the error policy: **the store degrades to a miss**.  Locked
database, corrupted file, disk full — lookups return ``None``, writes are
dropped, and the ``errors`` counter records it; the service keeps
answering from the engine.  WAL journaling keeps concurrent readers and
the occasional writer from blocking each other across replica processes.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional

from repro.service.cache import CacheKey

__all__ = ["SharedResultStore", "StoreStats"]


@dataclass
class StoreStats:
    """Counters of one :class:`SharedResultStore` handle.

    Counters are per-handle (this process's view), not global across
    replicas — aggregate over ``/stats`` of every replica for the cluster
    picture.  ``errors`` counts operations that degraded to a miss or a
    dropped write; ``invalidations`` counts rows deleted by scoped
    invalidation after a graph update (the delete is global to the file,
    but only the handle that performed it counts it).
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up yet)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def to_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        payload["hit_rate"] = round(self.hit_rate, 6)
        return payload


class SharedResultStore:
    """A persistent, cross-process result store over one sqlite file.

    Parameters
    ----------
    path:
        Filesystem path of the database (created on first use).
        ``":memory:"`` works for tests but defeats the purpose.
    timeout:
        Seconds a statement waits on a locked database before the
        operation degrades to a miss (sqlite ``busy_timeout``).

    Notes
    -----
    One connection per handle, serialized by a lock: the service calls
    from multiple request threads, and sqlite connections are not
    concurrency-safe by default.  Cross-*process* concurrency is sqlite's
    own job (WAL mode), which is exactly the deployment shape — N replica
    processes sharing one file.
    """

    def __init__(self, path: str, *, timeout: float = 2.0) -> None:
        self._path = path
        self._timeout = timeout
        self._lock = threading.Lock()
        self._stats = StoreStats()
        self._connection: Optional[sqlite3.Connection] = None
        self._connection = self._connect()
        if self._connection is None:
            self._stats.errors += 1

    def _connect(self) -> Optional[sqlite3.Connection]:
        """Open and initialize the database; ``None`` on any sqlite error.

        Touches no shared counters (the caller accounts the failure), so
        it is safe from any context without the handle lock.
        """
        try:
            connection = sqlite3.connect(
                self._path, timeout=self._timeout, check_same_thread=False
            )
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
            connection.execute(
                """
                CREATE TABLE IF NOT EXISTS results (
                    graph_fingerprint TEXT NOT NULL,
                    query_key TEXT NOT NULL,
                    config_fingerprint TEXT NOT NULL,
                    payload TEXT NOT NULL,
                    created REAL NOT NULL,
                    PRIMARY KEY (graph_fingerprint, query_key, config_fingerprint)
                )
                """
            )
            connection.commit()
            return connection
        except sqlite3.Error:
            return None

    @property
    def path(self) -> str:
        """The database file this handle reads and writes."""
        return self._path

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(self, key: CacheKey) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or ``None`` (miss or error)."""
        with self._lock:
            if self._connection is None:
                self._stats.misses += 1
                return None
            try:
                row = self._connection.execute(
                    "SELECT payload FROM results WHERE graph_fingerprint = ? "
                    "AND query_key = ? AND config_fingerprint = ?",
                    key,
                ).fetchone()
            except sqlite3.Error:
                self._stats.errors += 1
                self._stats.misses += 1
                return None
            if row is None:
                self._stats.misses += 1
                return None
            try:
                payload = json.loads(row[0])
            except ValueError:
                # A torn or tampered row: drop it and recompute.
                self._stats.errors += 1
                self._stats.misses += 1
                self._discard(self._connection, key)
                return None
            self._stats.hits += 1
            return payload

    def put(self, key: CacheKey, payload: Dict[str, Any]) -> bool:
        """Persist ``payload`` under ``key``; returns whether it was stored.

        ``INSERT OR REPLACE``: replicas racing to store the same key write
        identical bytes (determinism contract), so last-writer-wins is not
        a conflict, just redundancy.
        """
        try:
            blob = json.dumps(payload, separators=(",", ":"))
        except (TypeError, ValueError):
            # Counter mutation needs the lock even on this early-out path
            # (LOCK001): other threads increment the same stats under it.
            with self._lock:
                self._stats.errors += 1
            return False
        with self._lock:
            if self._connection is None:
                return False
            try:
                self._connection.execute(
                    "INSERT OR REPLACE INTO results VALUES (?, ?, ?, ?, ?)",
                    (*key, blob, time.time()),
                )
                self._connection.commit()
            except sqlite3.Error:
                self._stats.errors += 1
                return False
            self._stats.stores += 1
            return True

    def invalidate_graph(self, graph_fingerprint: str) -> int:
        """Delete exactly the rows stored under ``graph_fingerprint``.

        The fingerprint is the first primary-key column, so after a graph
        update this drops precisely the stale results — rows for other
        graphs (and for the updated graph's new fingerprint) survive.
        Returns the number of rows deleted; errors degrade to 0 deletions
        like every other store operation.
        """
        with self._lock:
            if self._connection is None:
                return 0
            try:
                cursor = self._connection.execute(
                    "DELETE FROM results WHERE graph_fingerprint = ?",
                    (graph_fingerprint,),
                )
                self._connection.commit()
            except sqlite3.Error:
                self._stats.errors += 1
                return 0
            dropped = cursor.rowcount if cursor.rowcount > 0 else 0
            self._stats.invalidations += dropped
            return dropped

    def invalidate_all(self) -> int:
        """Delete every row in the store file (all graphs, all configs).

        Global by design — the file is shared across replicas, so this is
        the operational full flush, not routine post-update hygiene.
        Returns the number of rows deleted (0 on error, as usual).
        """
        with self._lock:
            if self._connection is None:
                return 0
            try:
                cursor = self._connection.execute("DELETE FROM results")
                self._connection.commit()
            except sqlite3.Error:
                self._stats.errors += 1
                return 0
            dropped = cursor.rowcount if cursor.rowcount > 0 else 0
            self._stats.invalidations += dropped
            return dropped

    def _discard(self, connection: sqlite3.Connection, key: CacheKey) -> None:
        """Drop one row.  The caller holds the lock and passes the live
        connection explicitly, so this method touches no guarded state."""
        try:
            connection.execute(
                "DELETE FROM results WHERE graph_fingerprint = ? "
                "AND query_key = ? AND config_fingerprint = ?",
                key,
            )
            connection.commit()
        except sqlite3.Error:
            self._stats.errors += 1  # reprolint: ok(LOCK001) caller holds the lock

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            if self._connection is None:
                return 0
            try:
                row = self._connection.execute(
                    "SELECT COUNT(*) FROM results"
                ).fetchone()
            except sqlite3.Error:
                self._stats.errors += 1
                return 0
            return int(row[0])

    def stats(self) -> StoreStats:
        """An independent snapshot of this handle's counters."""
        with self._lock:
            return StoreStats(**asdict(self._stats))

    def close(self) -> None:
        """Close the underlying connection (later operations degrade to miss)."""
        with self._lock:
            if self._connection is not None:
                try:
                    self._connection.close()
                except sqlite3.Error:
                    pass
                self._connection = None

    def __enter__(self) -> "SharedResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
