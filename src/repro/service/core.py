"""The serving core: catalog + result cache + coalescer, one facade.

:class:`ReliabilityService` is the blocking, thread-safe heart of the
service layer; the HTTP front-end (:mod:`repro.service.server`) is a thin
JSON adapter over it, and tests and benchmarks drive it directly.

Determinism contract
--------------------
Every request is evaluated as if it were the *first query of a fresh
session*: the engine's config carries a pinned integer seed (see
:class:`~repro.service.catalog.GraphCatalog`) and every query is executed
with seed index 0 (``seed_indices=[0] * n`` through
:meth:`ReliabilityEngine.query_many`).  An answer is therefore a pure
function of the cache key triple::

    (graph fingerprint, query.canonical_key(), config.fingerprint())

so a cached payload is bit-identical (timing fields aside, per
:func:`~repro.engine.parallel.results_checksum`) to recomputing — the
property the cache, the coalescer, and the micro-batcher all rely on, and
the one the benchmark's parity gate enforces.
"""

from __future__ import annotations

import copy
import threading
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.engine.deltas import DeltaOp
from repro.engine.parallel import results_checksum
from repro.engine.queries import Query, query_from_dict
from repro.exceptions import ConfigurationError, UpdateRejectedError
from repro.obs import get_registry
from repro.obs.trace import SlowQueryLog, activate, current_trace, new_trace, span
from repro.service.cache import ResultCache, cache_key
from repro.service.catalog import GraphCatalog
from repro.service.coalesce import SingleFlightBatcher
from repro.service.store import SharedResultStore
from repro.utils.timers import Timer
from repro.utils.validation import check_positive_int

__all__ = ["ReliabilityService", "ServiceStats"]

QueryLike = Union[Query, Mapping[str, Any]]

#: Sentinel distinguishing "no cache passed" (build a fresh default one)
#: from an explicit ``cache=None`` (caching disabled).
_DEFAULT_CACHE = object()


@dataclass
class ServiceStats:
    """Request-level counters of one :class:`ReliabilityService`.

    ``engine_evaluations`` counts queries the engine actually computed —
    the number the cache and the coalescer exist to minimize; the
    benchmark's ≥2× reduction gate compares it between cache-on and
    cache-off runs of the same workload.  ``updates_applied`` counts
    graph deltas applied through :meth:`ReliabilityService.update`.
    """

    requests: int = 0
    cache_hits: int = 0
    shared_store_hits: int = 0
    engine_evaluations: int = 0
    updates_applied: int = 0
    errors: int = 0

    def to_dict(self) -> Dict[str, int]:
        return asdict(self)


class ReliabilityService:
    """Serve reliability queries over a catalog of prepared graphs.

    Parameters
    ----------
    catalog:
        The :class:`GraphCatalog` naming the graphs this service answers
        queries on.  Its (normalized, deterministically seeded) config is
        the service's evaluation config.
    cache:
        A :class:`ResultCache`, or ``None`` to disable caching (the
        benchmark's cache-off mode).  Defaults to a fresh cache with
        default bounds.
    batch_workers:
        Worker processes each micro-batch is sharded over
        (``engine.query_many(workers=batch_workers)``); ``1`` evaluates
        batches serially in-process.
    max_batch:
        Largest micro-batch one evaluator call may receive.
    store:
        An optional :class:`~repro.service.store.SharedResultStore` — the
        persistent tier *under* the memory cache.  Lookups fall through
        memory → store → engine; a store hit is promoted into the memory
        cache, and every engine evaluation is written through to both
        tiers.  The service does not close the store (it may be shared);
        the owner does.
    allow_updates:
        Whether :meth:`update` may mutate served graphs.  ``False`` is
        the read-only mode snapshot-warmed replicas default to: their
        prepared state was checksum-verified against the snapshot, and an
        in-place update would silently diverge sibling replicas warmed
        from the same snapshot.
    slow_query_log:
        An optional :class:`~repro.obs.trace.SlowQueryLog`; every
        :meth:`query` slower than its threshold is logged (with its trace
        id when one is active) and surfaced in :meth:`stats` under
        ``"slow_queries"``.
    registry:
        The :class:`~repro.obs.metrics.MetricsRegistry` the coalescer
        records its batch-size/latency histograms into.  Defaults to the
        process-global registry (so ``GET /metrics`` sees them); tests
        pass a private one.
    """

    def __init__(
        self,
        catalog: GraphCatalog,
        *,
        cache: Any = _DEFAULT_CACHE,
        store: Optional[SharedResultStore] = None,
        batch_workers: int = 1,
        max_batch: int = 64,
        allow_updates: bool = True,
        slow_query_log: Optional[SlowQueryLog] = None,
        registry: Any = None,
    ) -> None:
        check_positive_int(batch_workers, "batch_workers")
        self._catalog = catalog
        self._cache: Optional[ResultCache] = (
            ResultCache() if cache is _DEFAULT_CACHE else cache
        )
        self._store = store
        self._batch_workers = batch_workers
        self._config_fingerprint = catalog.config.fingerprint()
        self._stats = ServiceStats()
        self._stats_lock = threading.Lock()
        self._allow_updates = allow_updates
        # Serializes update() against micro-batch evaluation: a delta must
        # never land between a batch's evaluation and its cache writes, or
        # post-delta results would be stored under the pre-delta key.
        self._update_lock = threading.Lock()
        self._slow_query_log = slow_query_log
        self._batcher = SingleFlightBatcher(
            self._evaluate_group,
            max_batch=max_batch,
            registry=registry if registry is not None else get_registry(),
        )
        self._closed = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def catalog(self) -> GraphCatalog:
        """The graph catalog this service answers queries on."""
        return self._catalog

    @property
    def cache(self) -> Optional[ResultCache]:
        """The result cache (``None`` when caching is disabled)."""
        return self._cache

    @property
    def store(self) -> Optional[SharedResultStore]:
        """The persistent shared tier (``None`` when not configured)."""
        return self._store

    def stats(self) -> Dict[str, Any]:
        """The aggregated ``/stats`` payload: service, cache, coalescer,
        per-graph engine counters (including ``world_pools_evicted``)."""
        with self._stats_lock:
            service = self._stats.to_dict()
        payload = {
            "service": service,
            "cache": self._cache.stats().to_dict() if self._cache is not None else None,
            "shared_store": (
                self._store.stats().to_dict() if self._store is not None else None
            ),
            "coalescer": self._batcher.stats().to_dict(),
            "engines": self._catalog.engine_stats(),
            "config_fingerprint": self._config_fingerprint,
        }
        if self._slow_query_log is not None:
            payload["slow_queries"] = self._slow_query_log.snapshot()
        return payload

    def describe_graphs(self) -> List[Dict[str, Any]]:
        """The ``/graphs`` payload."""
        return self._catalog.describe()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        graph: str,
        query: QueryLike,
        *,
        timeout: Optional[float] = None,
        timings: bool = False,
    ) -> Dict[str, Any]:
        """Answer one query on the named graph; returns the JSON payload.

        Cache hits return immediately; misses coalesce with identical
        in-flight requests and ride the next micro-batch.  Evaluation
        errors (unknown graph, invalid terminals, ...) re-raise here —
        the HTTP layer maps them to 4xx responses.

        With ``timings=True`` and an active trace (see
        :func:`repro.obs.trace.activate`) the response carries an
        opt-in ``"timings"`` section: the trace id and per-stage
        wall/CPU spans, including the evaluation spans stitched over
        from the batcher thread.  Timing data stays response metadata —
        the cached payload and its checksum never contain it.
        """
        with self._stats_lock:
            self._stats.requests += 1
        timer = Timer().start()
        trace = current_trace()
        kind = "?"
        cached = False
        try:
            with span("service.lookup"):
                request = self._prepare(graph, query)
                kind = request.query.kind
                payload, tier = self._lookup(request.key)
            if payload is not None:
                self._count_hit(tier)
                cached = True
                response = self._respond(payload, tier=tier, graph=graph)
            else:
                future = self._batcher.submit(graph, request.key, request.query)
                with span("service.wait"):
                    payload = future.result(timeout=timeout)
                response = self._respond(payload, tier=None, graph=graph)
        except Exception:
            with self._stats_lock:
                self._stats.errors += 1
            raise
        elapsed = timer.stop()
        if self._slow_query_log is not None:
            self._slow_query_log.record(
                graph=graph,
                kind=kind,
                elapsed_seconds=elapsed,
                trace_id=trace.trace_id if trace is not None else None,
                cached=cached,
            )
        if timings and trace is not None:
            response["timings"] = trace.to_dict()
        return response

    def query_batch(
        self,
        graph: str,
        queries: Sequence[QueryLike],
        *,
        timeout: Optional[float] = None,
    ) -> List[Dict[str, Any]]:
        """Answer a batch; returns one payload per query, in order.

        Per-item failures become ``{"error": ..., "error_type": ...}``
        entries instead of failing the whole batch — batch clients should
        check each entry.
        """
        requests = []
        outcomes: List[Optional[Dict[str, Any]]] = []
        for query in queries:
            with self._stats_lock:
                self._stats.requests += 1
            try:
                requests.append(self._prepare(graph, query))
                outcomes.append(None)
            except Exception as error:  # bad payloads stay per-item
                requests.append(None)
                outcomes.append(_error_payload(error))
                with self._stats_lock:
                    self._stats.errors += 1
        futures: List[Optional[Any]] = [None] * len(requests)
        for position, request in enumerate(requests):
            if request is None:
                continue
            payload, tier = self._lookup(request.key)
            if payload is not None:
                self._count_hit(tier)
                outcomes[position] = self._respond(payload, tier=tier, graph=graph)
            else:
                futures[position] = self._batcher.submit(
                    graph, request.key, request.query
                )
        for position, future in enumerate(futures):
            if future is None:
                continue
            try:
                outcomes[position] = self._respond(
                    future.result(timeout=timeout), tier=None, graph=graph
                )
            except Exception as error:
                outcomes[position] = _error_payload(error)
                with self._stats_lock:
                    self._stats.errors += 1
        return [outcome for outcome in outcomes if outcome is not None]

    # ------------------------------------------------------------------
    # Updates and invalidation
    # ------------------------------------------------------------------
    @property
    def allow_updates(self) -> bool:
        """Whether :meth:`update` is enabled on this service."""
        return self._allow_updates

    def update(
        self, graph: str, delta: Union[DeltaOp, Mapping[str, Any]]
    ) -> Dict[str, Any]:
        """Apply a typed delta to the named graph; returns the JSON payload.

        Delegates to :meth:`GraphCatalog.update` (validation, incremental
        re-prepare, fingerprint/version bump) under the update lock, so a
        delta never interleaves with a micro-batch evaluation, then drops
        exactly the results cached under the pre-delta fingerprint from
        both cache tiers.  The payload carries the catalog's
        :class:`~repro.service.catalog.CatalogUpdate` fields plus an
        ``"invalidated"`` entry/row count per tier.

        Raises :class:`~repro.exceptions.UpdateRejectedError` when the
        service is read-only (``allow_updates=False``).
        """
        if not self._allow_updates:
            raise UpdateRejectedError(
                "this service is read-only (snapshot-warmed replicas reject "
                "updates by default); restart with --allow-updates to opt in"
            )
        try:
            with self._update_lock:
                outcome = self._catalog.update(graph, delta)
                invalidated = self._invalidate_fingerprint(outcome.old_fingerprint)
        except Exception:
            with self._stats_lock:
                self._stats.errors += 1
            raise
        with self._stats_lock:
            self._stats.updates_applied += 1
        return {**outcome.to_dict(), "invalidated": invalidated}

    def invalidate_graph(self, fingerprint: str) -> Dict[str, int]:
        """Drop every cached result keyed under ``fingerprint``, both tiers.

        Scoped: results for other graphs (and other versions of the same
        graph) survive.  Returns ``{"cache_entries": ..., "store_entries":
        ...}`` counts of what was dropped.
        """
        with self._update_lock:
            return self._invalidate_fingerprint(fingerprint)

    def invalidate_all(self) -> Dict[str, int]:
        """Flush the memory cache and every row of the shared store.

        The blunt instrument for operational recovery; prefer
        :meth:`invalidate_graph` after an update (which :meth:`update`
        already performs).  Returns per-tier drop counts.
        """
        with self._update_lock:
            cache_entries = (
                self._cache.invalidate_all() if self._cache is not None else 0
            )
            store_entries = (
                self._store.invalidate_all() if self._store is not None else 0
            )
            return {"cache_entries": cache_entries, "store_entries": store_entries}

    def _invalidate_fingerprint(self, fingerprint: str) -> Dict[str, int]:
        """Drop one fingerprint's results from both tiers (no locking here)."""
        cache_entries = (
            self._cache.invalidate_graph(fingerprint) if self._cache is not None else 0
        )
        store_entries = (
            self._store.invalidate_graph(fingerprint) if self._store is not None else 0
        )
        return {"cache_entries": cache_entries, "store_entries": store_entries}

    def close(self) -> None:
        """Drain pending work and stop the batcher thread."""
        if not self._closed:
            self._closed = True
            self._batcher.close()

    def __enter__(self) -> "ReliabilityService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    class _Request:
        __slots__ = ("query", "key")

        def __init__(self, query: Query, key: Any) -> None:
            self.query = query
            self.key = key

    def _prepare(self, graph: str, query: QueryLike) -> "ReliabilityService._Request":
        if isinstance(query, Mapping):
            query = query_from_dict(query)
        if not isinstance(query, Query):
            raise ConfigurationError(
                f"expected a Query object or its to_dict() form, got {type(query)!r}"
            )
        entry = self._catalog.entry(graph)
        key = cache_key(
            entry.fingerprint, query.canonical_key(), self._config_fingerprint
        )
        return self._Request(query, key)

    def _lookup(self, key: Any):
        """``(payload, tier)`` from memory then the shared store, else ``(None, None)``.

        A shared-store hit is promoted into the memory cache so repeats in
        this process stay off sqlite.
        """
        if self._cache is not None:
            payload = self._cache.get(key)
            if payload is not None:
                return payload, "memory"
        if self._store is not None:
            payload = self._store.get(key)
            if payload is not None:
                if self._cache is not None:
                    self._cache.put(key, payload)
                return payload, "shared"
        return None, None

    def _count_hit(self, tier: Optional[str]) -> None:
        with self._stats_lock:
            self._stats.cache_hits += 1
            if tier == "shared":
                self._stats.shared_store_hits += 1

    @staticmethod
    def _respond(
        payload: Dict[str, Any], *, tier: Optional[str], graph: str
    ) -> Dict[str, Any]:
        # Deep copy: callers may mutate the response, and the payload (its
        # nested "result" dict included) is shared with the cache and with
        # coalesced waiters.  The graph name is stamped per request — the
        # cache key is content-based, so a hit may have been computed under
        # a different catalog name for the same graph.
        response = copy.deepcopy(payload)
        # Evaluation spans measured on the batcher thread ride the outcome
        # (never the cached payload); stitch them into this request's trace
        # and drop them from the JSON response.
        spans = response.pop("_spans", None)
        if spans:
            trace = current_trace()
            if trace is not None:
                trace.extend(spans)
        response["cached"] = tier is not None
        response["cache_tier"] = tier
        response["graph"] = graph
        return response

    def _evaluate_group(self, group: str, items: Sequence[Any]) -> List[Any]:
        """Evaluate one drained micro-batch on the group's shared engine.

        Runs on the batcher thread.  The whole batch goes through one
        ``query_many(workers=batch_workers, seed_indices=[0]*n)`` call;
        if that raises (one bad query fails a shared batch), each query is
        retried individually so failures stay per-request.  Successful
        payloads are stored in the cache before their futures resolve.

        Holds the update lock end to end, and keys cache writes by the
        fingerprint read *inside* it, not the one the request was
        submitted under: a delta landing between submission and
        evaluation would otherwise store post-delta results under the
        pre-delta key — exactly the stale entry scoped invalidation just
        removed.
        """
        with self._update_lock:
            return self._evaluate_group_locked(group, items)

    def _evaluate_group_locked(self, group: str, items: Sequence[Any]) -> List[Any]:
        engine = self._catalog.engine(group)
        fingerprint = self._catalog.entry(group).fingerprint
        queries = [request for _, request in items]
        before = engine.stats.queries_served
        # Evaluation runs on the batcher thread, outside any request's
        # context; it collects spans under its own trace and hands them to
        # every waiter through the outcome (the cached payload stays free
        # of timing data).
        batch_trace = new_trace()
        results: Optional[List[Any]] = None
        with activate(batch_trace):
            try:
                results = engine.query_many(
                    queries,
                    workers=self._batch_workers,
                    seed_indices=[0] * len(queries),
                )
            except Exception:
                results = None
            if results is None:
                results = []
                for query in queries:
                    try:
                        results.append(engine.query(query, seed_index=0))
                    except Exception as error:
                        results.append(error)
        spans = batch_trace.spans() if batch_trace is not None else []
        # Count real engine work, not intent: the fallback path re-runs a
        # failed batch query by query, and the engine's own counter is the
        # one source that sees both attempts.
        with self._stats_lock:
            self._stats.engine_evaluations += engine.stats.queries_served - before
        outcomes: List[Any] = []
        for (_, query), result in zip(items, results):
            if isinstance(result, Exception):
                outcomes.append(result)
                continue
            payload = {
                "graph": group,
                "graph_fingerprint": fingerprint,
                "config_fingerprint": self._config_fingerprint,
                "kind": type(result).kind,
                "checksum": results_checksum([result]),
                "result": result.to_dict(),
            }
            # Re-derive the storage key from the *current* fingerprint —
            # the submitted key may predate a graph update.
            key = cache_key(
                fingerprint, query.canonical_key(), self._config_fingerprint
            )
            if self._cache is not None:
                self._cache.put(key, payload)
            if self._store is not None:
                self._store.put(key, payload)
            outcomes.append({**payload, "_spans": spans} if spans else payload)
        return outcomes


def _error_payload(error: Exception) -> Dict[str, Any]:
    return {"error": str(error), "error_type": type(error).__name__}
