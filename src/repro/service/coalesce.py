"""In-flight request coalescing and micro-batching.

Two load-shaping mechanisms sit between the network front-end and the
engine, both provided by :class:`SingleFlightBatcher`:

* **Single-flight**: concurrent *identical* requests (same cache key)
  share one computation.  The first submission creates the in-flight
  future; every duplicate arriving before it resolves receives the same
  future instead of enqueueing a second evaluation.
* **Micro-batching**: *distinct* pending requests for the same engine
  group (graph + config) are drained together and handed to the evaluator
  as one batch, which the service answers through a single
  ``engine.query_many(..., workers=N)`` call — so a burst of traffic
  exercises the parallel executor instead of trickling through one query
  at a time.

Batching never changes answers: the service pins every query to seed
index 0 (see :meth:`ReliabilityEngine.query_many`'s ``seed_indices``), so
a query's result is the same whether it runs alone, in a batch of 40, or
on 4 worker processes.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, Hashable, List, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_positive_int

__all__ = ["BatchItem", "CoalesceStats", "SingleFlightBatcher"]

#: One pending request: its dedup key and the opaque request object the
#: evaluator understands (the service passes typed queries through).
BatchItem = Tuple[Hashable, Any]

#: The evaluator contract: given a group label and the drained batch,
#: return exactly one outcome per item, in order — a result payload, or an
#: Exception instance for items that failed (exceptions are delivered to
#: that item's waiters only; they never poison the rest of the batch).
Evaluator = Callable[[str, Sequence[BatchItem]], List[Any]]


@dataclass
class CoalesceStats:
    """Counters of one :class:`SingleFlightBatcher`.

    ``submitted`` counts every request handed to :meth:`submit`;
    ``coalesced`` the subset that attached to an already-in-flight
    identical request; ``batches`` the evaluator invocations;
    ``batched_requests`` the items those invocations carried (so
    ``batched_requests / batches`` is the mean fold factor);
    ``largest_batch`` the biggest single drain.
    """

    submitted: int = 0
    coalesced: int = 0
    batches: int = 0
    batched_requests: int = 0
    largest_batch: int = 0

    def to_dict(self) -> Dict[str, int]:
        return asdict(self)


class SingleFlightBatcher:
    """Deduplicate identical requests and batch distinct ones per group.

    Parameters
    ----------
    evaluate:
        The evaluator callback (see :data:`Evaluator`).  Called on the
        batcher's worker thread with every drained batch; must return one
        outcome per item in order.  If it raises, the whole batch's
        waiters receive that exception.
    max_batch:
        Largest batch one evaluator call may receive; a bigger drain is
        split across consecutive calls.
    registry:
        An optional :class:`~repro.obs.metrics.MetricsRegistry`; when
        given, every drained batch observes its size and evaluation
        latency into ``repro_coalesce_batch_size`` /
        ``repro_coalesce_batch_seconds`` histograms.

    Notes
    -----
    One worker thread drains pending requests group by group (FIFO over
    groups, preserving submission order within a group).  Requests
    arriving while the evaluator is busy accumulate and are folded into
    the next drain — the longer an evaluation takes, the bigger the next
    batch, which is exactly the load shape ``query_many(workers=N)``
    wants.
    """

    def __init__(
        self, evaluate: Evaluator, *, max_batch: int = 64, registry: Any = None
    ) -> None:
        check_positive_int(max_batch, "max_batch")
        self._evaluate = evaluate
        self._max_batch = max_batch
        self._batch_size_histogram = None
        self._batch_seconds_histogram = None
        if registry is not None:
            self._batch_size_histogram = registry.histogram(
                "repro_coalesce_batch_size",
                "Requests per drained micro-batch.",
                buckets=(1, 2, 4, 8, 16, 32, 64, 128),
            )
            self._batch_seconds_histogram = registry.histogram(
                "repro_coalesce_batch_seconds",
                "Evaluator latency per drained micro-batch.",
            )
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._pending: "OrderedDict[str, List[Tuple[Hashable, Any, Future]]]" = (
            OrderedDict()
        )
        self._inflight: Dict[Hashable, Future] = {}
        self._stats = CoalesceStats()
        self._closed = False
        self._worker = threading.Thread(
            target=self._run, name="repro-service-batcher", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    # Submission (any thread)
    # ------------------------------------------------------------------
    def submit(self, group: str, key: Hashable, request: Any) -> "Future[Any]":
        """Enqueue ``request`` and return the future of its outcome.

        Identical keys already in flight are coalesced: the returned
        future is the original submission's, and no new work is queued.
        """
        with self._lock:
            if self._closed:
                raise ConfigurationError("the service batcher is closed")
            self._stats.submitted += 1
            existing = self._inflight.get(key)
            if existing is not None:
                self._stats.coalesced += 1
                return existing
            future: "Future[Any]" = Future()
            self._inflight[key] = future
            self._pending.setdefault(group, []).append((key, request, future))
            self._wakeup.notify()
        return future

    # ------------------------------------------------------------------
    # Worker thread
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._lock:
                while not self._pending and not self._closed:
                    self._wakeup.wait()
                if self._closed and not self._pending:
                    return
                group, waiting = next(iter(self._pending.items()))
                batch = waiting[: self._max_batch]
                remainder = waiting[self._max_batch :]
                if remainder:
                    self._pending[group] = remainder
                else:
                    del self._pending[group]
                self._stats.batches += 1
                self._stats.batched_requests += len(batch)
                self._stats.largest_batch = max(self._stats.largest_batch, len(batch))
            self._deliver(group, batch)

    def _deliver(
        self, group: str, batch: List[Tuple[Hashable, Any, Future]]
    ) -> None:
        started = time.perf_counter()
        try:
            outcomes = self._evaluate(group, [(key, request) for key, request, _ in batch])
            if len(outcomes) != len(batch):
                raise ConfigurationError(
                    f"evaluator returned {len(outcomes)} outcomes for a "
                    f"batch of {len(batch)} requests"
                )
        except Exception as error:
            outcomes = [error] * len(batch)
        if self._batch_size_histogram is not None:
            self._batch_size_histogram.observe(len(batch))
            self._batch_seconds_histogram.observe(time.perf_counter() - started)
        for (key, _, future), outcome in zip(batch, outcomes):
            with self._lock:
                self._inflight.pop(key, None)
            if isinstance(outcome, Exception):
                future.set_exception(outcome)
            else:
                future.set_result(outcome)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> CoalesceStats:
        """An independent snapshot of the coalescing counters."""
        with self._lock:
            return CoalesceStats(**asdict(self._stats))

    def close(self, *, drain: bool = True) -> None:
        """Stop the worker thread.

        With ``drain`` (default) pending batches are evaluated first;
        otherwise waiters receive a :class:`ConfigurationError`.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if not drain:
                for waiting in self._pending.values():
                    for key, _, future in waiting:
                        self._inflight.pop(key, None)
                        future.set_exception(
                            ConfigurationError("the service batcher is closed")
                        )
                self._pending.clear()
            self._wakeup.notify_all()
        self._worker.join(timeout=30.0)
