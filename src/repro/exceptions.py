"""Exception hierarchy for the ``repro`` library.

All library errors derive from :class:`ReproError`, so callers can catch a
single base class at an API boundary.  More specific subclasses signal which
layer of the system rejected the input (graph model, estimator configuration,
preprocessing, ...).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "EdgeNotFoundError",
    "VertexNotFoundError",
    "InvalidProbabilityError",
    "TerminalError",
    "EstimatorError",
    "ConfigurationError",
    "BDDLimitExceededError",
    "PreprocessError",
    "DatasetError",
    "DeltaError",
    "SnapshotError",
    "ClusterError",
    "UpdateRejectedError",
]


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class GraphError(ReproError):
    """Raised for malformed graphs or invalid graph operations."""


class VertexNotFoundError(GraphError, KeyError):
    """Raised when an operation refers to a vertex that is not in the graph."""


class EdgeNotFoundError(GraphError, KeyError):
    """Raised when an operation refers to an edge that is not in the graph."""


class InvalidProbabilityError(GraphError, ValueError):
    """Raised when an edge probability lies outside the interval ``(0, 1]``."""


class TerminalError(ReproError, ValueError):
    """Raised when a terminal set is invalid for the given graph."""


class EstimatorError(ReproError):
    """Raised when a reliability estimator is misused or misconfigured."""


class ConfigurationError(ReproError, ValueError):
    """Raised for invalid algorithm parameters (sample counts, widths, ...)."""


class BDDLimitExceededError(ReproError, MemoryError):
    """Raised when an exact BDD construction exceeds its node budget.

    The experiment harness interprets this as the paper's "DNF" outcome for
    the exact BDD baseline on large graphs.
    """


class PreprocessError(ReproError):
    """Raised when the extension technique receives an unusable input."""


class DatasetError(ReproError, ValueError):
    """Raised when a named dataset cannot be built or is unknown."""


class DeltaError(GraphError):
    """Raised when a typed graph delta is malformed or does not apply.

    Covers empty batches, wire payloads with unknown fields or kinds, and
    deltas that name edges absent from (or already present in) the target
    graph.  Validation happens against a scratch copy before anything is
    mutated, so a rejected delta leaves the graph untouched.
    """


class UpdateRejectedError(ReproError):
    """Raised when a service refuses to apply a graph update.

    Snapshot-warmed replicas serve read-only by default: their prepared
    state was verified against the snapshot's probe checksums, and an
    in-place update would silently diverge every replica warmed from the
    same snapshot.  Start the service with ``--allow-updates`` to opt in.
    """


class SnapshotError(ReproError):
    """Raised when a prepared-state snapshot cannot be written or loaded.

    Covers format-version mismatches, corrupted or tampered sections
    (checksum failures), and snapshots whose recomputed state diverges
    from the recorded probe checksum.  The message always says which
    snapshot file is at fault and what to do about it (rebuild with
    ``GraphCatalog.save_snapshot``).
    """


class ClusterError(ReproError):
    """Raised when the scale-out serving layer cannot do its job.

    Examples: a replica process that never printed its bound address, a
    router asked to start with zero replicas, or a forward that found no
    live replica to serve it.
    """
