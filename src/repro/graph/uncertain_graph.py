"""The uncertain-graph data model.

An uncertain graph ``G = (V, E, p)`` is a connected, undirected graph whose
edges exist independently with probability ``p(e) ∈ (0, 1]`` (Section 3.1 of
the paper).  This module provides :class:`UncertainGraph`, a multigraph-
capable container with stable integer edge identifiers.

Design notes
------------
* Edges carry integer ids because the frontier-based algorithms and the
  preprocessing transformations address edges individually (two parallel
  edges between the same endpoints are distinct objects, and the transform
  phase of the extension technique deliberately creates and then merges
  parallel edges).
* Vertices may be any hashable objects (ints, strings, tuples); dataset
  loaders typically use ints.
* The structure is mutable: the preprocessing pipeline edits copies of the
  input graph in place.  The reliability estimators never mutate the graph
  they are given.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.exceptions import (
    EdgeNotFoundError,
    GraphError,
    TerminalError,
    VertexNotFoundError,
)
from repro.utils.validation import check_probability_open_closed

__all__ = ["Edge", "UncertainGraph"]

Vertex = Hashable


@dataclass(frozen=True)
class Edge:
    """An undirected uncertain edge.

    Attributes
    ----------
    id:
        Stable integer identifier, unique within its graph.
    u, v:
        Endpoint vertices.  ``u == v`` denotes a self-loop (only produced
        transiently by the preprocessing transform phase).
    probability:
        Existence probability in ``(0, 1]``.
    """

    id: int
    u: Vertex
    v: Vertex
    probability: float

    def other(self, vertex: Vertex) -> Vertex:
        """Return the endpoint opposite to ``vertex``."""
        if vertex == self.u:
            return self.v
        if vertex == self.v:
            return self.u
        raise GraphError(f"vertex {vertex!r} is not an endpoint of edge {self.id}")

    @property
    def endpoints(self) -> Tuple[Vertex, Vertex]:
        """The pair of endpoints ``(u, v)``."""
        return (self.u, self.v)

    def is_loop(self) -> bool:
        """Return ``True`` for a self-loop."""
        return self.u == self.v


class UncertainGraph:
    """An undirected uncertain multigraph.

    Parameters
    ----------
    name:
        Optional label used by dataset registries and experiment reports.

    Example
    -------
    >>> g = UncertainGraph(name="triangle")
    >>> _ = g.add_edge("a", "b", 0.9)
    >>> _ = g.add_edge("b", "c", 0.8)
    >>> _ = g.add_edge("a", "c", 0.7)
    >>> g.num_vertices, g.num_edges
    (3, 3)
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._adjacency: Dict[Vertex, List[int]] = {}
        self._edges: Dict[int, Edge] = {}
        self._next_edge_id = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: Vertex) -> Vertex:
        """Add an isolated vertex (no-op if already present)."""
        self._adjacency.setdefault(vertex, [])
        return vertex

    def add_edge(
        self,
        u: Vertex,
        v: Vertex,
        probability: float,
        *,
        edge_id: Optional[int] = None,
    ) -> int:
        """Add an undirected edge and return its id.

        Parallel edges and self-loops are permitted (the preprocessing
        transform phase relies on both); most datasets contain neither.
        """
        probability = check_probability_open_closed(probability, "edge probability")
        if edge_id is None:
            edge_id = self._next_edge_id
        elif edge_id in self._edges:
            raise GraphError(f"edge id {edge_id} already exists")
        self._next_edge_id = max(self._next_edge_id, edge_id + 1)
        edge = Edge(edge_id, u, v, probability)
        self._edges[edge_id] = edge
        self.add_vertex(u)
        self._adjacency[u].append(edge_id)
        if u != v:
            self.add_vertex(v)
            self._adjacency[v].append(edge_id)
        return edge_id

    def remove_edge(self, edge_id: int) -> Edge:
        """Remove the edge with ``edge_id`` and return it."""
        edge = self.edge(edge_id)
        del self._edges[edge_id]
        self._adjacency[edge.u].remove(edge_id)
        if edge.u != edge.v:
            self._adjacency[edge.v].remove(edge_id)
        return edge

    def remove_vertex(self, vertex: Vertex) -> None:
        """Remove ``vertex`` and every edge incident to it."""
        if vertex not in self._adjacency:
            raise VertexNotFoundError(vertex)
        for edge_id in list(self._adjacency[vertex]):
            if edge_id in self._edges:
                self.remove_edge(edge_id)
        del self._adjacency[vertex]

    def set_probability(self, edge_id: int, probability: float) -> None:
        """Replace the existence probability of an edge."""
        edge = self.edge(edge_id)
        probability = check_probability_open_closed(probability, "edge probability")
        self._edges[edge_id] = Edge(edge.id, edge.u, edge.v, probability)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        """Number of edges ``|E|``."""
        return len(self._edges)

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over the vertices."""
        return iter(self._adjacency)

    def edges(self) -> Iterator[Edge]:
        """Iterate over the edges (in insertion/id order)."""
        return iter(self._edges.values())

    def edge_ids(self) -> Iterator[int]:
        """Iterate over edge identifiers."""
        return iter(self._edges)

    def edge(self, edge_id: int) -> Edge:
        """Return the :class:`Edge` with the given id."""
        try:
            return self._edges[edge_id]
        except KeyError:
            raise EdgeNotFoundError(edge_id) from None

    def probability(self, edge_id: int) -> float:
        """Return the existence probability of the edge with ``edge_id``."""
        return self.edge(edge_id).probability

    def has_vertex(self, vertex: Vertex) -> bool:
        """Return ``True`` if ``vertex`` is in the graph."""
        return vertex in self._adjacency

    def has_edge_between(self, u: Vertex, v: Vertex) -> bool:
        """Return ``True`` if at least one edge connects ``u`` and ``v``."""
        if u not in self._adjacency or v not in self._adjacency:
            return False
        return any(self._edges[eid].other(u) == v for eid in self._adjacency[u])

    def edges_between(self, u: Vertex, v: Vertex) -> List[Edge]:
        """Return every (parallel) edge between ``u`` and ``v``."""
        if u not in self._adjacency or v not in self._adjacency:
            return []
        if u == v:
            return [self._edges[eid] for eid in self._adjacency[u]
                    if self._edges[eid].is_loop()]
        return [
            self._edges[eid]
            for eid in self._adjacency[u]
            if not self._edges[eid].is_loop() and self._edges[eid].other(u) == v
        ]

    def incident_edges(self, vertex: Vertex) -> List[Edge]:
        """Return the edges incident to ``vertex``."""
        try:
            edge_ids = self._adjacency[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None
        return [self._edges[eid] for eid in edge_ids]

    def incident_edge_ids(self, vertex: Vertex) -> List[int]:
        """Return the ids of the edges incident to ``vertex``."""
        try:
            return list(self._adjacency[vertex])
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def degree(self, vertex: Vertex) -> int:
        """Return the degree of ``vertex`` (self-loops count once)."""
        try:
            return len(self._adjacency[vertex])
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def neighbors(self, vertex: Vertex) -> Iterator[Vertex]:
        """Iterate over the neighbours of ``vertex`` (with multiplicity)."""
        for edge in self.incident_edges(vertex):
            if not edge.is_loop():
                yield edge.other(vertex)

    def average_degree(self) -> float:
        """Return the average vertex degree ``2|E| / |V|``."""
        if self.num_vertices == 0:
            return 0.0
        return 2.0 * self.num_edges / self.num_vertices

    def average_probability(self) -> float:
        """Return the mean edge existence probability."""
        if self.num_edges == 0:
            return 0.0
        return sum(e.probability for e in self._edges.values()) / self.num_edges

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self, *, name: Optional[str] = None) -> "UncertainGraph":
        """Return a deep-enough copy (edges are immutable, so shared)."""
        clone = UncertainGraph(name=self.name if name is None else name)
        clone._edges = dict(self._edges)
        clone._adjacency = {v: list(eids) for v, eids in self._adjacency.items()}
        clone._next_edge_id = self._next_edge_id
        return clone

    def subgraph(self, vertices: Iterable[Vertex], *, name: str = "") -> "UncertainGraph":
        """Return the subgraph induced by ``vertices`` (edge ids preserved)."""
        keep: Set[Vertex] = set(vertices)
        missing = [v for v in keep if v not in self._adjacency]
        if missing:
            raise VertexNotFoundError(missing[0])
        sub = UncertainGraph(name=name or f"{self.name}:subgraph")
        for vertex in keep:
            sub.add_vertex(vertex)
        for edge in self._edges.values():
            if edge.u in keep and edge.v in keep:
                sub.add_edge(edge.u, edge.v, edge.probability, edge_id=edge.id)
        return sub

    def edge_subgraph(self, edge_ids: Iterable[int], *, name: str = "") -> "UncertainGraph":
        """Return the subgraph made of the given edges and their endpoints."""
        sub = UncertainGraph(name=name or f"{self.name}:edge-subgraph")
        for edge_id in edge_ids:
            edge = self.edge(edge_id)
            sub.add_edge(edge.u, edge.v, edge.probability, edge_id=edge.id)
        return sub

    # ------------------------------------------------------------------
    # Terminals and validation
    # ------------------------------------------------------------------
    def validate_terminals(self, terminals: Iterable[Vertex]) -> Tuple[Vertex, ...]:
        """Check a terminal set and return it as a deduplicated tuple.

        Terminals must be existing vertices and there must be at least one.
        The order of first appearance is preserved so experiments remain
        deterministic.
        """
        seen: Dict[Vertex, None] = {}
        for terminal in terminals:
            if terminal not in self._adjacency:
                raise TerminalError(f"terminal {terminal!r} is not a vertex of the graph")
            seen.setdefault(terminal, None)
        if not seen:
            raise TerminalError("the terminal set must not be empty")
        return tuple(seen)

    def topology_fingerprint(self) -> Tuple[int, int, int]:
        """A cheap O(1) stamp that changes whenever the topology changes.

        Any mutation touching an edge (adding, removing, or replacing) or
        changing the vertex count changes at least one component;
        probability updates do not, which is exactly right for consumers
        caching topology-only derived data such as the 2-edge-connected
        decomposition index.  (Swapping one isolated vertex for another is
        the only structural change it can miss — harmless for connectivity
        consumers, since an isolated vertex never joins a terminal set's
        component.)
        """
        return (self.num_vertices, self.num_edges, self._next_edge_id)

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_edge_list(self) -> List[Tuple[Vertex, Vertex, float]]:
        """Return ``(u, v, probability)`` triples in edge-id order."""
        return [(e.u, e.v, e.probability) for e in sorted(self._edges.values(), key=lambda e: e.id)]

    @classmethod
    def from_edge_list(
        cls,
        edges: Sequence[Tuple[Vertex, Vertex, float]],
        *,
        name: str = "",
        isolated_vertices: Iterable[Vertex] = (),
    ) -> "UncertainGraph":
        """Build a graph from ``(u, v, probability)`` triples."""
        graph = cls(name=name)
        for u, v, probability in edges:
            graph.add_edge(u, v, probability)
        for vertex in isolated_vertices:
            graph.add_vertex(vertex)
        return graph

    @classmethod
    def from_probability_map(
        cls,
        probabilities: Mapping[Tuple[Vertex, Vertex], float],
        *,
        name: str = "",
    ) -> "UncertainGraph":
        """Build a graph from a ``{(u, v): probability}`` mapping."""
        graph = cls(name=name)
        for (u, v), probability in probabilities.items():
            graph.add_edge(u, v, probability)
        return graph

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"UncertainGraph({label} |V|={self.num_vertices}, "
            f"|E|={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UncertainGraph):
            return NotImplemented
        return (
            set(self._adjacency) == set(other._adjacency)
            and self._edges == other._edges
        )

    def __hash__(self) -> int:
        # Identity hash: graphs are mutable, so content hashing would break
        # dict invariants mid-session.  The value never crosses a process
        # boundary — anything persistent keys on content fingerprints
        # (service.catalog.graph_fingerprint) instead.
        return id(self)  # reprolint: ok(RNG002) in-process identity, never serialized
