"""Deterministic connectivity over uncertain graphs and possible worlds.

These helpers treat the graph purely topologically: an edge either exists or
it does not.  They are used for (a) checking terminal connectivity inside
sampled possible worlds, (b) sanity checks on datasets, and (c) the
preprocessing phases.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set

from repro.graph.uncertain_graph import UncertainGraph
from repro.utils.union_find import UnionFind

__all__ = [
    "connected_components",
    "is_connected",
    "terminals_connected",
    "terminals_connected_in_world",
    "vertices_reachable_from",
]

Vertex = Hashable


def connected_components(
    graph: UncertainGraph,
    *,
    edge_ids: Optional[Iterable[int]] = None,
) -> List[Set[Vertex]]:
    """Return the connected components of the graph's topology.

    Parameters
    ----------
    graph:
        The uncertain graph (probabilities are ignored).
    edge_ids:
        If given, only these edges are considered present; all vertices of
        the graph are still included (possibly as isolated components).
    """
    union_find = UnionFind(graph.vertices())
    if edge_ids is None:
        edges = graph.edges()
    else:
        edges = (graph.edge(eid) for eid in edge_ids)
    for edge in edges:
        if not edge.is_loop():
            union_find.union(edge.u, edge.v)
    return [set(members) for members in union_find.groups().values()]


def is_connected(graph: UncertainGraph) -> bool:
    """Return ``True`` if the underlying topology is connected.

    The empty graph is considered connected (vacuously), matching the
    convention used by the dataset validators.
    """
    if graph.num_vertices == 0:
        return True
    return len(connected_components(graph)) == 1


def terminals_connected(
    graph: UncertainGraph,
    terminals: Sequence[Vertex],
    *,
    edge_ids: Optional[Iterable[int]] = None,
) -> bool:
    """Return ``True`` if all ``terminals`` lie in one component.

    With ``edge_ids`` given, only those edges are treated as existing; this
    is the indicator function ``I(Gp, T)`` of Definition 1 evaluated on the
    possible world described by ``edge_ids``.
    """
    terminals = list(terminals)
    if len(terminals) <= 1:
        return True
    union_find = UnionFind()
    for terminal in terminals:
        union_find.add(terminal)
    if edge_ids is None:
        edges = graph.edges()
    else:
        edges = (graph.edge(eid) for eid in edge_ids)
    for edge in edges:
        if not edge.is_loop():
            union_find.union(edge.u, edge.v)
    return union_find.same_component(terminals)


def terminals_connected_in_world(
    graph: UncertainGraph,
    terminals: Sequence[Vertex],
    existing_edge_ids: Iterable[int],
) -> bool:
    """Alias of :func:`terminals_connected` with an explicit edge set.

    Kept as a separate name because the sampling baselines call it in their
    inner loop and the intent ("evaluate the indicator on this world") reads
    better at the call site.
    """
    return terminals_connected(graph, terminals, edge_ids=existing_edge_ids)


def vertices_reachable_from(
    graph: UncertainGraph,
    source: Vertex,
    *,
    edge_ids: Optional[Iterable[int]] = None,
) -> Set[Vertex]:
    """Return the set of vertices reachable from ``source``.

    Uses an iterative depth-first search so that very deep graphs (long
    road-network paths) do not hit Python's recursion limit.
    """
    if not graph.has_vertex(source):
        return set()
    allowed: Optional[Set[int]] = None if edge_ids is None else set(edge_ids)
    adjacency: Dict[Vertex, List[Vertex]] = {}
    for edge in graph.edges():
        if edge.is_loop():
            continue
        if allowed is not None and edge.id not in allowed:
            continue
        adjacency.setdefault(edge.u, []).append(edge.v)
        adjacency.setdefault(edge.v, []).append(edge.u)
    seen: Set[Vertex] = {source}
    stack: List[Vertex] = [source]
    while stack:
        vertex = stack.pop()
        for neighbor in adjacency.get(vertex, ()):
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return seen
