"""Possible worlds of an uncertain graph.

A *possible world* (the paper's "possible graph" ``Gp``) fixes every edge of
the uncertain graph to either existent or non-existent.  Its probability is
the product of ``p(e)`` over existing edges and ``1 - p(e)`` over missing
edges.  Enumerating or sampling possible worlds is the basic primitive both
of the brute-force oracle and of the sampling baselines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import FrozenSet, Hashable, Iterable, Iterator, Sequence, Tuple

from repro.graph.connectivity import terminals_connected
from repro.graph.uncertain_graph import UncertainGraph
from repro.utils.rng import RandomLike, resolve_rng

__all__ = [
    "PossibleWorld",
    "enumerate_possible_worlds",
    "sample_possible_world",
    "world_probability",
    "world_log_probability",
    "world_probability_exact",
]

Vertex = Hashable


@dataclass(frozen=True)
class PossibleWorld:
    """A single possible world: the set of edge ids that exist."""

    existing_edges: FrozenSet[int]
    probability: float

    def contains_edge(self, edge_id: int) -> bool:
        """Return ``True`` if the edge exists in this world."""
        return edge_id in self.existing_edges

    def terminals_connected(
        self, graph: UncertainGraph, terminals: Sequence[Vertex]
    ) -> bool:
        """Evaluate the indicator ``I(Gp, T)`` for this world."""
        return terminals_connected(graph, terminals, edge_ids=self.existing_edges)


def world_probability(graph: UncertainGraph, existing_edges: Iterable[int]) -> float:
    """Return ``Pr[Gp]`` for the world whose existing edges are given."""
    existing = set(existing_edges)
    probability = 1.0
    for edge in graph.edges():
        if edge.id in existing:
            probability *= edge.probability
        else:
            probability *= 1.0 - edge.probability
    return probability


def world_log_probability(graph: UncertainGraph, existing_edges: Iterable[int]) -> float:
    """Return ``log Pr[Gp]``; ``-inf`` if the world has probability zero.

    Log-space is used by the Horvitz–Thompson baseline on large graphs,
    where individual world probabilities underflow 64-bit floats.
    """
    existing = set(existing_edges)
    log_probability = 0.0
    for edge in graph.edges():
        p = edge.probability if edge.id in existing else 1.0 - edge.probability
        if p <= 0.0:
            return float("-inf")
        log_probability += math.log(p)
    return log_probability


def world_probability_exact(
    graph: UncertainGraph, existing_edges: Iterable[int]
) -> Fraction:
    """Return ``Pr[Gp]`` as an exact :class:`fractions.Fraction`.

    Used by the brute-force oracle so that ground-truth reliabilities in the
    test suite are bit-exact.
    """
    existing = set(existing_edges)
    probability = Fraction(1)
    for edge in graph.edges():
        p = Fraction(edge.probability)
        probability *= p if edge.id in existing else (Fraction(1) - p)
    return probability


def sample_possible_world(
    graph: UncertainGraph, rng: RandomLike = None
) -> PossibleWorld:
    """Draw one possible world according to the edge probabilities."""
    generator = resolve_rng(rng)
    existing = frozenset(
        edge.id for edge in graph.edges() if generator.random() < edge.probability
    )
    return PossibleWorld(existing, world_probability(graph, existing))


def enumerate_possible_worlds(
    graph: UncertainGraph, *, max_edges: int = 25
) -> Iterator[Tuple[PossibleWorld, Fraction]]:
    """Yield every possible world with its exact probability.

    The number of worlds is ``2^{|E|}``, so this is only usable on tiny
    graphs; ``max_edges`` guards against accidental exponential blow-ups.

    Yields
    ------
    Pairs ``(world, exact_probability)`` where ``world.probability`` holds
    the float value and the second element the exact fraction.
    """
    edge_ids = [edge.id for edge in graph.edges()]
    if len(edge_ids) > max_edges:
        raise ValueError(
            f"refusing to enumerate 2^{len(edge_ids)} possible worlds; "
            f"raise max_edges explicitly if you really want this"
        )
    probabilities = {edge.id: edge.probability for edge in graph.edges()}
    exact = {edge.id: Fraction(edge.probability) for edge in graph.edges()}
    total = 1 << len(edge_ids)
    for mask in range(total):
        existing = frozenset(
            edge_ids[i] for i in range(len(edge_ids)) if mask & (1 << i)
        )
        probability = 1.0
        exact_probability = Fraction(1)
        for edge_id in edge_ids:
            if edge_id in existing:
                probability *= probabilities[edge_id]
                exact_probability *= exact[edge_id]
            else:
                probability *= 1.0 - probabilities[edge_id]
                exact_probability *= Fraction(1) - exact[edge_id]
        yield PossibleWorld(existing, probability), exact_probability
