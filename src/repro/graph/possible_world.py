"""Possible worlds of an uncertain graph.

A *possible world* (the paper's "possible graph" ``Gp``) fixes every edge of
the uncertain graph to either existent or non-existent.  Its probability is
the product of ``p(e)`` over existing edges and ``1 - p(e)`` over missing
edges.  Enumerating or sampling possible worlds is the basic primitive both
of the brute-force oracle and of the sampling baselines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, FrozenSet, Hashable, Iterable, Iterator, Sequence, Tuple, Union

from repro.graph.connectivity import terminals_connected
from repro.graph.uncertain_graph import UncertainGraph
from repro.utils.rng import RandomLike, resolve_rng

__all__ = [
    "PossibleWorld",
    "enumerate_possible_worlds",
    "sample_possible_world",
    "world_probability",
    "world_log_probability",
    "world_probability_exact",
]

Vertex = Hashable

#: What the ``existing_edges`` of a world may be passed as: an iterable of
#: edge ids, a pre-built (frozen)set of them, or an ``int`` bitmask whose
#: bit ``i`` marks **edge id** ``i`` as existing.  Note the compiled
#: kernel's masks (:class:`repro.graph.compiled.CompiledGraph`) are indexed
#: by edge *position*, which equals the edge id only for graphs whose ids
#: are the default contiguous insertion ids; translate through
#: ``CompiledGraph.edge_ids_in_mask`` otherwise.
WorldEdges = Union[int, FrozenSet[int], Iterable[int]]


@dataclass(frozen=True)
class PossibleWorld:
    """A single possible world: the set of edge ids that exist."""

    existing_edges: FrozenSet[int]
    probability: float

    def contains_edge(self, edge_id: int) -> bool:
        """Return ``True`` if the edge exists in this world."""
        return edge_id in self.existing_edges

    def terminals_connected(
        self, graph: UncertainGraph, terminals: Sequence[Vertex]
    ) -> bool:
        """Evaluate the indicator ``I(Gp, T)`` for this world."""
        return terminals_connected(graph, terminals, edge_ids=self.existing_edges)


def _membership(existing_edges: WorldEdges) -> Callable[[int], object]:
    """An O(1) edge-id membership test over any accepted world form.

    Pre-built sets and frozensets are used as-is (no copy per call — the
    fix for the old per-call ``set(existing_edges)`` rebuild), bitmasks are
    tested bit-wise, and anything else is materialized once.
    """
    if isinstance(existing_edges, int):
        mask = existing_edges
        return lambda edge_id: (mask >> edge_id) & 1
    if not isinstance(existing_edges, (set, frozenset)):
        existing_edges = frozenset(existing_edges)
    return existing_edges.__contains__


def _world_factors(graph: UncertainGraph, existing_edges: WorldEdges) -> Iterator[float]:
    """Yield each edge's probability factor for the given world, in edge order.

    The single implementation behind :func:`world_probability` and
    :func:`world_log_probability`: ``p(e)`` for existing edges, ``1 - p(e)``
    for missing ones.
    """
    contains = _membership(existing_edges)
    for edge in graph.edges():
        yield edge.probability if contains(edge.id) else 1.0 - edge.probability


def world_probability(graph: UncertainGraph, existing_edges: WorldEdges) -> float:
    """Return ``Pr[Gp]`` for the world whose existing edges are given.

    ``existing_edges`` may be an iterable of edge ids, a precomputed
    (frozen)set, or an ``int`` bitmask over edge ids.
    """
    probability = 1.0
    for factor in _world_factors(graph, existing_edges):
        probability *= factor
    return probability


def world_log_probability(graph: UncertainGraph, existing_edges: WorldEdges) -> float:
    """Return ``log Pr[Gp]``; ``-inf`` if the world has probability zero.

    Log-space is used by the Horvitz–Thompson baseline on large graphs,
    where individual world probabilities underflow 64-bit floats.  Accepts
    the same world forms as :func:`world_probability`.
    """
    log_probability = 0.0
    for factor in _world_factors(graph, existing_edges):
        if factor <= 0.0:
            return float("-inf")
        log_probability += math.log(factor)
    return log_probability


def world_probability_exact(
    graph: UncertainGraph, existing_edges: WorldEdges
) -> Fraction:
    """Return ``Pr[Gp]`` as an exact :class:`fractions.Fraction`.

    Used by the brute-force oracle so that ground-truth reliabilities in the
    test suite are bit-exact.  Accepts the same world forms as
    :func:`world_probability`.
    """
    contains = _membership(existing_edges)
    probability = Fraction(1)
    for edge in graph.edges():
        p = Fraction(edge.probability)
        probability *= p if contains(edge.id) else (Fraction(1) - p)
    return probability


def sample_possible_world(
    graph: UncertainGraph, rng: RandomLike = None
) -> PossibleWorld:
    """Draw one possible world according to the edge probabilities."""
    generator = resolve_rng(rng)
    existing = frozenset(
        edge.id for edge in graph.edges() if generator.random() < edge.probability
    )
    return PossibleWorld(existing, world_probability(graph, existing))


def enumerate_possible_worlds(
    graph: UncertainGraph, *, max_edges: int = 25
) -> Iterator[Tuple[PossibleWorld, Fraction]]:
    """Yield every possible world with its exact probability.

    The number of worlds is ``2^{|E|}``, so this is only usable on tiny
    graphs; ``max_edges`` guards against accidental exponential blow-ups.

    Yields
    ------
    Pairs ``(world, exact_probability)`` where ``world.probability`` holds
    the float value and the second element the exact fraction.
    """
    edge_ids = [edge.id for edge in graph.edges()]
    if len(edge_ids) > max_edges:
        raise ValueError(
            f"refusing to enumerate 2^{len(edge_ids)} possible worlds; "
            f"raise max_edges explicitly if you really want this"
        )
    # Hoist the per-edge factors out of the 2^m loop: reconstructing a
    # Fraction from a float per edge per world would dominate the oracle.
    factors = [
        (edge.id, edge.probability, Fraction(edge.probability))
        for edge in graph.edges()
    ]
    total = 1 << len(edge_ids)
    for mask in range(total):
        existing = frozenset(
            edge_ids[i] for i in range(len(edge_ids)) if mask & (1 << i)
        )
        probability = 1.0
        exact_probability = Fraction(1)
        for edge_id, p, exact in factors:
            if edge_id in existing:
                probability *= p
                exact_probability *= exact
            else:
                probability *= 1.0 - p
                exact_probability *= Fraction(1) - exact
        yield PossibleWorld(existing, probability), exact_probability
