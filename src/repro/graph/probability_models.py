"""Edge-probability assignment models.

The paper assigns edge existence probabilities in two ways (Section 7.1):

* **uniform random** probabilities for the small accuracy datasets
  (Karate, American-Revolution), following Cheng et al.;
* an **attribute-based** model for the large datasets: for an edge with a
  positive attribute value ``α`` (number of co-authored papers, road
  length, ...) the probability is ``log(α + 1) / log(α_M + 2)`` where
  ``α_M`` is the maximum attribute value in the dataset, following
  Ceccarello et al.;
* the protein dataset uses interaction scores in ``(0, 1]`` directly.

These helpers implement all three so the dataset generators and any user
data loader share one tested code path.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Mapping, Tuple

from repro.exceptions import InvalidProbabilityError
from repro.graph.uncertain_graph import UncertainGraph
from repro.utils.rng import RandomLike, resolve_rng

__all__ = [
    "assign_uniform_probabilities",
    "attribute_probability",
    "assign_attribute_probabilities",
    "assign_interaction_scores",
]

Vertex = Hashable


def assign_uniform_probabilities(
    graph: UncertainGraph,
    *,
    low: float = 0.05,
    high: float = 1.0,
    rng: RandomLike = None,
) -> UncertainGraph:
    """Re-assign every edge a probability drawn uniformly from ``(low, high]``.

    The graph is modified in place and returned for chaining.  The default
    range mirrors the paper's uniform assignment (average probability close
    to 0.5) while respecting the ``(0, 1]`` domain.
    """
    if not 0.0 <= low < high <= 1.0:
        raise InvalidProbabilityError(
            f"uniform probability range must satisfy 0 <= low < high <= 1, "
            f"got [{low}, {high}]"
        )
    generator = resolve_rng(rng)
    for edge_id in list(graph.edge_ids()):
        value = generator.uniform(low, high)
        # Guard against a draw of exactly `low` when low == 0.
        if value <= 0.0:
            value = high * 0.5
        graph.set_probability(edge_id, value)
    return graph


def attribute_probability(alpha: float, alpha_max: float) -> float:
    """Return ``log(α + 1) / log(α_M + 2)`` clamped to ``(0, 1]``.

    This is the probability model used for the co-authorship and road
    datasets in the paper.  ``alpha`` must be non-negative and
    ``alpha_max`` must be at least ``alpha``.
    """
    if alpha < 0:
        raise InvalidProbabilityError(f"attribute value must be non-negative, got {alpha}")
    if alpha_max < alpha:
        raise InvalidProbabilityError(
            f"alpha_max ({alpha_max}) must be >= alpha ({alpha})"
        )
    probability = math.log(alpha + 1.0) / math.log(alpha_max + 2.0)
    # alpha == 0 would give probability 0, which is outside (0, 1]; treat a
    # zero attribute as the weakest possible relationship instead.
    minimum = math.log(2.0) / math.log(alpha_max + 2.0)
    probability = max(probability, minimum * 0.5)
    return min(probability, 1.0)


def assign_attribute_probabilities(
    graph: UncertainGraph,
    attributes: Mapping[int, float],
) -> UncertainGraph:
    """Assign probabilities from per-edge attribute values.

    Parameters
    ----------
    graph:
        Graph to modify in place.
    attributes:
        Mapping from edge id to a non-negative attribute value (e.g. number
        of co-authored papers).  Every edge of the graph must appear.
    """
    missing = [eid for eid in graph.edge_ids() if eid not in attributes]
    if missing:
        raise InvalidProbabilityError(
            f"missing attribute values for {len(missing)} edges (e.g. id {missing[0]})"
        )
    alpha_max = max(attributes[eid] for eid in graph.edge_ids())
    for edge_id in list(graph.edge_ids()):
        graph.set_probability(
            edge_id, attribute_probability(attributes[edge_id], alpha_max)
        )
    return graph


def assign_interaction_scores(
    graph: UncertainGraph,
    scores: Mapping[int, float],
) -> UncertainGraph:
    """Assign probabilities directly from interaction scores in ``(0, 1]``."""
    for edge_id in list(graph.edge_ids()):
        if edge_id not in scores:
            raise InvalidProbabilityError(f"missing interaction score for edge {edge_id}")
        graph.set_probability(edge_id, scores[edge_id])
    return graph
