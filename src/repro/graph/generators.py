"""Synthetic uncertain-graph generators.

The paper's evaluation uses real datasets (KONECT, DBLP, OpenStreetMap, the
Human Genome Center interaction database).  Those files are not available
offline, so this module provides seeded generators that reproduce the
*structural properties* the experiments depend on:

* :func:`coauthorship_graph` — community-structured, power-law-flavoured
  collaboration graphs with the paper's ``log(α+1)/log(α_M+2)`` probability
  model (DBLP substitutes).
* :func:`road_network_graph` — near-planar, low-degree grid-like networks
  with length-based probabilities (Tokyo / NYC substitutes).
* :func:`protein_interaction_graph` — dense, high-average-degree graphs with
  interaction-score probabilities (Hit-direct substitute).
* :func:`affiliation_graph` — sparse bipartite person/event graphs that are
  almost trees (American-Revolution substitute).
* :func:`random_connected_graph` — generic connected G(n, m) graphs used by
  the test suite and the ablation benchmarks.

Every generator takes an ``rng`` argument (seed, generator, or ``None``) so
experiments are reproducible.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.exceptions import ConfigurationError
from repro.graph.probability_models import (
    assign_attribute_probabilities,
    assign_uniform_probabilities,
)
from repro.graph.uncertain_graph import UncertainGraph
from repro.utils.rng import RandomLike, resolve_rng
from repro.utils.validation import check_positive_int

__all__ = [
    "affiliation_graph",
    "coauthorship_graph",
    "cycle_graph",
    "path_graph",
    "protein_interaction_graph",
    "random_connected_graph",
    "road_network_graph",
    "series_parallel_graph",
    "star_graph",
]


# ----------------------------------------------------------------------
# Elementary topologies (used heavily in unit tests and examples)
# ----------------------------------------------------------------------
def path_graph(n: int, probability: float = 0.9, *, name: str = "path") -> UncertainGraph:
    """Return a path on ``n`` vertices with a constant edge probability."""
    check_positive_int(n, "n")
    graph = UncertainGraph(name=name)
    graph.add_vertex(0)
    for i in range(n - 1):
        graph.add_edge(i, i + 1, probability)
    return graph


def cycle_graph(n: int, probability: float = 0.9, *, name: str = "cycle") -> UncertainGraph:
    """Return a cycle on ``n`` vertices with a constant edge probability."""
    check_positive_int(n, "n")
    if n < 3:
        raise ConfigurationError("a cycle needs at least 3 vertices")
    graph = UncertainGraph(name=name)
    for i in range(n):
        graph.add_edge(i, (i + 1) % n, probability)
    return graph


def star_graph(leaves: int, probability: float = 0.9, *, name: str = "star") -> UncertainGraph:
    """Return a star with ``leaves`` leaves around a hub vertex ``0``."""
    check_positive_int(leaves, "leaves")
    graph = UncertainGraph(name=name)
    graph.add_vertex(0)
    for i in range(1, leaves + 1):
        graph.add_edge(0, i, probability)
    return graph


def series_parallel_graph(
    stages: int,
    width: int,
    probability: float = 0.8,
    *,
    name: str = "series-parallel",
) -> UncertainGraph:
    """Return a ladder of ``stages`` parallel bundles of ``width`` paths.

    Useful for exercising the transform phase of the extension technique:
    the graph reduces to a single edge by repeated series/parallel
    reductions when the interior vertices are not terminals.
    """
    check_positive_int(stages, "stages")
    check_positive_int(width, "width")
    graph = UncertainGraph(name=name)
    next_vertex = stages + 1
    for stage in range(stages):
        left, right = stage, stage + 1
        for _ in range(width):
            middle = next_vertex
            next_vertex += 1
            graph.add_edge(left, middle, probability)
            graph.add_edge(middle, right, probability)
    return graph


# ----------------------------------------------------------------------
# Generic random graphs
# ----------------------------------------------------------------------
def random_connected_graph(
    num_vertices: int,
    num_edges: int,
    *,
    probability_low: float = 0.1,
    probability_high: float = 1.0,
    rng: RandomLike = None,
    name: str = "random",
) -> UncertainGraph:
    """Return a connected random graph with ``num_edges`` edges.

    A random spanning tree guarantees connectivity; the remaining edges are
    drawn uniformly at random among the non-existing pairs (parallel edges
    are never produced).  Edge probabilities are uniform in
    ``(probability_low, probability_high]``.
    """
    check_positive_int(num_vertices, "num_vertices")
    minimum_edges = num_vertices - 1
    maximum_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges < minimum_edges or num_edges > maximum_edges:
        raise ConfigurationError(
            f"num_edges must lie in [{minimum_edges}, {maximum_edges}] for "
            f"{num_vertices} vertices, got {num_edges}"
        )
    generator = resolve_rng(rng)
    graph = UncertainGraph(name=name)
    vertices = list(range(num_vertices))
    generator.shuffle(vertices)
    existing: Set[Tuple[int, int]] = set()
    graph.add_vertex(vertices[0])
    # Random spanning tree: attach each vertex to a random earlier vertex.
    for index in range(1, num_vertices):
        u = vertices[index]
        v = vertices[generator.randrange(index)]
        graph.add_edge(u, v, 0.5)
        existing.add((min(u, v), max(u, v)))
    while len(existing) < num_edges:
        u = generator.randrange(num_vertices)
        v = generator.randrange(num_vertices)
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in existing:
            continue
        existing.add(key)
        graph.add_edge(u, v, 0.5)
    assign_uniform_probabilities(
        graph, low=probability_low, high=probability_high, rng=generator
    )
    return graph


# ----------------------------------------------------------------------
# Dataset-family generators (Table 2 substitutes)
# ----------------------------------------------------------------------
def coauthorship_graph(
    num_authors: int,
    *,
    num_communities: Optional[int] = None,
    papers_per_author: float = 2.5,
    authors_per_paper: int = 3,
    rng: RandomLike = None,
    name: str = "coauthorship",
) -> UncertainGraph:
    """Return a DBLP-style co-authorship uncertain graph.

    Authors are grouped into communities; papers pick a community and a
    small author set (mostly) inside it, which yields the dense-cluster /
    sparse-bridge structure of real co-authorship networks.  The edge
    attribute ``α`` is the number of papers two authors co-wrote, and edge
    probabilities follow the paper's ``log(α+1)/log(α_M+2)`` model.
    """
    check_positive_int(num_authors, "num_authors")
    generator = resolve_rng(rng)
    if num_communities is None:
        num_communities = max(2, int(math.sqrt(num_authors)))
    community_of = {author: generator.randrange(num_communities) for author in range(num_authors)}
    members: Dict[int, List[int]] = {}
    for author, community in community_of.items():
        members.setdefault(community, []).append(author)

    num_papers = max(1, int(num_authors * papers_per_author / max(1, authors_per_paper)))
    coauthor_counts: Dict[Tuple[int, int], int] = {}
    for _ in range(num_papers):
        community = generator.randrange(num_communities)
        pool = members.get(community) or list(range(num_authors))
        team_size = max(2, min(len(pool), 1 + generator.randrange(max(2, authors_per_paper * 2 - 1))))
        team = generator.sample(pool, min(team_size, len(pool)))
        # Occasionally add a cross-community collaborator.
        if generator.random() < 0.15:
            outsider = generator.randrange(num_authors)
            if outsider not in team:
                team.append(outsider)
        for i, a in enumerate(team):
            for b in team[i + 1:]:
                key = (min(a, b), max(a, b))
                coauthor_counts[key] = coauthor_counts.get(key, 0) + 1

    graph = UncertainGraph(name=name)
    attributes: Dict[int, float] = {}
    for (a, b), count in coauthor_counts.items():
        edge_id = graph.add_edge(a, b, 0.5)
        attributes[edge_id] = float(count)
    for author in range(num_authors):
        graph.add_vertex(author)
    _connect_components(graph, attributes, generator, default_attribute=1.0)
    if attributes:
        assign_attribute_probabilities(graph, attributes)
    return graph


def road_network_graph(
    rows: int,
    cols: int,
    *,
    keep_probability: float = 0.75,
    diagonal_probability: float = 0.04,
    subdivide: int = 2,
    rng: RandomLike = None,
    name: str = "road",
) -> UncertainGraph:
    """Return a road-network-like uncertain graph on a jittered grid.

    Vertices are grid intersections plus intermediate road points: each
    kept grid edge is subdivided into up to ``subdivide`` + 1 segments,
    which produces the many degree-two vertices (average degree ≈ 2.3–2.5)
    of the paper's Tokyo / NYC datasets and gives the transform phase of
    the extension technique realistic series chains to contract.  Edge
    attributes are heavy-tailed synthetic road lengths and probabilities
    follow the paper's ``log(α+1)/log(α_M+2)`` model.
    """
    check_positive_int(rows, "rows")
    check_positive_int(cols, "cols")
    if subdivide < 0:
        raise ConfigurationError("subdivide must be non-negative")
    generator = resolve_rng(rng)
    graph = UncertainGraph(name=name)
    attributes: Dict[int, float] = {}
    next_extra_vertex = rows * cols

    def vertex(r: int, c: int) -> int:
        return r * cols + c

    def road_length() -> float:
        # Heavy-tailed lengths between ~2 m and ~10 km, skewed toward short
        # segments, give the wide probability spread (average ≈ 0.3–0.4)
        # seen in the real road datasets.
        return 2.0 * (5000.0 ** (generator.random() ** 2))

    def add_road(a: int, b: int) -> None:
        nonlocal next_extra_vertex
        segments = 1 + generator.randrange(subdivide + 1) if subdivide else 1
        previous = a
        for segment in range(segments):
            target = b if segment == segments - 1 else next_extra_vertex
            if target != b:
                next_extra_vertex += 1
            edge_id = graph.add_edge(previous, target, 0.5)
            attributes[edge_id] = road_length()
            previous = target

    for r in range(rows):
        for c in range(cols):
            graph.add_vertex(vertex(r, c))
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols and generator.random() < keep_probability:
                add_road(vertex(r, c), vertex(r, c + 1))
            if r + 1 < rows and generator.random() < keep_probability:
                add_road(vertex(r, c), vertex(r + 1, c))
            if (
                r + 1 < rows
                and c + 1 < cols
                and generator.random() < diagonal_probability
            ):
                add_road(vertex(r, c), vertex(r + 1, c + 1))
    _connect_components(graph, attributes, generator, default_attribute=100.0)
    if attributes:
        assign_attribute_probabilities(graph, attributes)
    return graph


def protein_interaction_graph(
    num_proteins: int,
    *,
    average_degree: float = 27.0,
    hub_fraction: float = 0.05,
    rng: RandomLike = None,
    name: str = "protein",
) -> UncertainGraph:
    """Return a protein-interaction-like dense uncertain graph.

    A small fraction of "hub" proteins attract a large share of the
    interactions (configuration-model flavour), producing the high average
    degree of the paper's Hit-direct dataset, where the S²BDD bounds are the
    loosest.  Probabilities are interaction scores drawn from a Beta-like
    mixture centred around 0.5.
    """
    check_positive_int(num_proteins, "num_proteins")
    generator = resolve_rng(rng)
    graph = UncertainGraph(name=name)
    for protein in range(num_proteins):
        graph.add_vertex(protein)
    num_hubs = max(1, int(num_proteins * hub_fraction))
    hubs = list(range(num_hubs))
    target_edges = int(num_proteins * average_degree / 2)
    existing: Set[Tuple[int, int]] = set()
    attempts = 0
    max_attempts = target_edges * 20
    while len(existing) < target_edges and attempts < max_attempts:
        attempts += 1
        if generator.random() < 0.5:
            u = hubs[generator.randrange(num_hubs)]
        else:
            u = generator.randrange(num_proteins)
        v = generator.randrange(num_proteins)
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in existing:
            continue
        existing.add(key)
        score = _interaction_score(generator)
        graph.add_edge(key[0], key[1], score)
    attributes: Dict[int, float] = {}
    _connect_components(graph, attributes, generator, default_attribute=1.0)
    # Newly added connector edges got a placeholder probability of 0.5 via
    # _connect_components; replace them with sampled interaction scores.
    for edge_id in attributes:
        graph.set_probability(edge_id, _interaction_score(generator))
    return graph


def affiliation_graph(
    num_people: int,
    num_organizations: int,
    *,
    memberships_per_person: float = 1.2,
    rng: RandomLike = None,
    name: str = "affiliation",
) -> UncertainGraph:
    """Return a sparse bipartite person/organization affiliation graph.

    With close to one membership per person the graph is nearly a forest,
    so it has many bridges and tiny 2-edge-connected components — exactly
    the regime in which the paper's extension technique lets the S²BDD
    compute the reliability exactly (Table 4).  Vertices ``0..P-1`` are
    people, ``P..P+O-1`` organizations.  Probabilities are uniform random,
    as in the paper's small datasets.
    """
    check_positive_int(num_people, "num_people")
    check_positive_int(num_organizations, "num_organizations")
    generator = resolve_rng(rng)
    graph = UncertainGraph(name=name)
    organizations = [num_people + i for i in range(num_organizations)]
    for person in range(num_people):
        graph.add_vertex(person)
    for organization in organizations:
        graph.add_vertex(organization)
    existing: Set[Tuple[int, int]] = set()
    for person in range(num_people):
        memberships = 1
        extra = memberships_per_person - 1.0
        while extra > 0 and generator.random() < extra:
            memberships += 1
            extra -= 1.0
        chosen = generator.sample(organizations, min(memberships, num_organizations))
        for organization in chosen:
            key = (person, organization)
            if key not in existing:
                existing.add(key)
                graph.add_edge(person, organization, 0.5)
    _connect_bipartite_components(graph, num_people, organizations, existing, generator)
    assign_uniform_probabilities(graph, low=0.05, high=1.0, rng=generator)
    return graph


def _connect_bipartite_components(
    graph: UncertainGraph,
    num_people: int,
    organizations: List[int],
    existing: Set[Tuple[int, int]],
    generator,
) -> None:
    """Stitch affiliation-graph components together with person→organization edges.

    Keeps the graph bipartite: a stray component is attached by linking one
    of its people to an organization of the main component (or, for a
    memberless organization, by giving it a member from the main component).
    """
    from repro.graph.connectivity import connected_components

    components = connected_components(graph)
    if len(components) <= 1:
        return
    main = max(components, key=len)
    main_organizations = [v for v in main if v >= num_people] or organizations
    main_people = [v for v in main if v < num_people] or list(range(num_people))
    for component in components:
        if component is main:
            continue
        people = [v for v in component if v < num_people]
        if people:
            person = people[0]
            organization = main_organizations[generator.randrange(len(main_organizations))]
        else:
            organization = next(iter(component))
            person = main_people[generator.randrange(len(main_people))]
        if (person, organization) not in existing:
            existing.add((person, organization))
            graph.add_edge(person, organization, 0.5)


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _interaction_score(generator) -> float:
    """Draw an interaction score in (0, 1] centred around ~0.47."""
    score = 0.5 * (generator.random() + generator.random())
    return min(1.0, max(0.01, score))


def _connect_components(
    graph: UncertainGraph,
    attributes: Dict[int, float],
    generator,
    *,
    default_attribute: float,
) -> None:
    """Add the minimum number of edges needed to make ``graph`` connected.

    The reliability problem is defined on connected uncertain graphs, so
    every generator stitches stray components together with a few extra
    edges.  New edges are recorded in ``attributes`` with a default value so
    attribute-based probability assignment still covers every edge.
    """
    from repro.graph.connectivity import connected_components

    components = connected_components(graph)
    if len(components) <= 1:
        return
    representatives = [next(iter(sorted(component, key=repr))) for component in components]
    anchor = representatives[0]
    for other in representatives[1:]:
        edge_id = graph.add_edge(anchor, other, 0.5)
        attributes[edge_id] = default_attribute
        anchor = other if generator.random() < 0.5 else anchor
