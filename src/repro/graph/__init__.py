"""Uncertain-graph substrate.

This package implements everything the reliability algorithms need to know
about graphs: the :class:`~repro.graph.uncertain_graph.UncertainGraph` data
model, possible-world sampling, deterministic connectivity, bridges and
2-edge-connected components, synthetic graph generators, probability
assignment models, and edge-list I/O.
"""

from repro.graph.compiled import (
    CompiledGraph,
    IntUnionFind,
    compile_graph,
    compiled_fingerprint,
)
from repro.graph.components import (
    GraphDecomposition,
    decompose_graph,
    find_articulation_points,
    find_bridges,
    two_edge_connected_components,
)
from repro.graph.connectivity import (
    connected_components,
    is_connected,
    terminals_connected,
)
from repro.graph.possible_world import (
    PossibleWorld,
    sample_possible_world,
    world_probability,
)
from repro.graph.uncertain_graph import Edge, UncertainGraph

__all__ = [
    "CompiledGraph",
    "Edge",
    "GraphDecomposition",
    "IntUnionFind",
    "PossibleWorld",
    "UncertainGraph",
    "compile_graph",
    "compiled_fingerprint",
    "connected_components",
    "decompose_graph",
    "find_articulation_points",
    "find_bridges",
    "is_connected",
    "sample_possible_world",
    "terminals_connected",
    "two_edge_connected_components",
    "world_probability",
]
