"""Bridges, articulation points, and 2-edge-connected components.

The extension technique of the paper (Section 5) is built on the
2-edge-connected decomposition of the uncertain graph's topology:

* a **bridge** is an edge whose removal disconnects the graph,
* an **articulation point** is a vertex whose removal disconnects it,
* a **2-edge-connected component (2ECC)** is a maximal subgraph that stays
  connected after removing any single edge.

Removing all bridges from a connected graph leaves exactly the 2ECCs as the
connected components, and contracting each 2ECC to a single vertex yields a
tree (the *bridge tree*) whose edges are the bridges.  The preprocessing
pipeline uses that tree to prune, decompose and transform the input graph.

All traversals are iterative so deep graphs do not exhaust Python's
recursion limit.  Parallel edges are handled correctly: two parallel edges
between the same endpoints mean that neither of them is a bridge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Set, Tuple

from repro.graph.uncertain_graph import UncertainGraph
from repro.utils.union_find import UnionFind

__all__ = [
    "GraphDecomposition",
    "decompose_graph",
    "find_articulation_points",
    "find_bridges",
    "two_edge_connected_components",
]

Vertex = Hashable


@dataclass
class GraphDecomposition:
    """The full 2-edge-connected decomposition of a graph.

    Attributes
    ----------
    bridges:
        Ids of bridge edges.
    articulation_points:
        Vertices whose removal disconnects the graph.
    components:
        The 2-edge-connected components, each a frozenset of vertices.
        Every vertex belongs to exactly one component (an isolated or
        tree-like vertex forms a singleton component).
    component_of:
        Mapping from vertex to the index of its component in ``components``.
    """

    bridges: FrozenSet[int]
    articulation_points: FrozenSet[Vertex]
    components: Tuple[FrozenSet[Vertex], ...]
    component_of: Dict[Vertex, int] = field(default_factory=dict)

    @property
    def num_components(self) -> int:
        """Number of 2-edge-connected components."""
        return len(self.components)

    def bridge_tree_edges(
        self, graph: UncertainGraph
    ) -> List[Tuple[int, int, int]]:
        """Return the bridge-tree edges as ``(component_i, component_j, edge_id)``.

        Each bridge of the original graph connects two distinct components;
        the resulting structure is a forest (a tree when the input graph is
        connected).
        """
        edges: List[Tuple[int, int, int]] = []
        for bridge_id in sorted(self.bridges):
            bridge = graph.edge(bridge_id)
            ci = self.component_of[bridge.u]
            cj = self.component_of[bridge.v]
            edges.append((ci, cj, bridge_id))
        return edges


def find_bridges(graph: UncertainGraph) -> Set[int]:
    """Return the set of bridge edge ids of ``graph``.

    Implementation: iterative depth-first search computing low-link values.
    An edge ``(u, v)`` (traversed from ``u`` to child ``v``) is a bridge iff
    ``low[v] > disc[u]``.  Parallel edges are distinguished by edge id, so a
    parallel pair is never reported as a bridge.  Self-loops are never
    bridges.
    """
    disc: Dict[Vertex, int] = {}
    low: Dict[Vertex, int] = {}
    bridges: Set[int] = set()
    counter = 0

    adjacency: Dict[Vertex, List[Tuple[Vertex, int]]] = {v: [] for v in graph.vertices()}
    for edge in graph.edges():
        if edge.is_loop():
            continue
        adjacency[edge.u].append((edge.v, edge.id))
        adjacency[edge.v].append((edge.u, edge.id))

    for root in graph.vertices():
        if root in disc:
            continue
        # Stack frames: (vertex, parent_edge_id, iterator index)
        disc[root] = low[root] = counter
        counter += 1
        stack: List[Tuple[Vertex, int, int]] = [(root, -1, 0)]
        while stack:
            vertex, parent_edge, index = stack.pop()
            neighbors = adjacency[vertex]
            advanced = False
            while index < len(neighbors):
                neighbor, edge_id = neighbors[index]
                index += 1
                if edge_id == parent_edge:
                    continue
                if neighbor not in disc:
                    disc[neighbor] = low[neighbor] = counter
                    counter += 1
                    stack.append((vertex, parent_edge, index))
                    stack.append((neighbor, edge_id, 0))
                    advanced = True
                    break
                low[vertex] = min(low[vertex], disc[neighbor])
            if advanced:
                continue
            # Post-order: propagate low-link to the parent frame.
            if stack:
                parent_vertex = stack[-1][0]
                low[parent_vertex] = min(low[parent_vertex], low[vertex])
                if parent_edge != -1 and low[vertex] > disc[parent_vertex]:
                    bridges.add(parent_edge)
    return bridges


def find_articulation_points(graph: UncertainGraph) -> Set[Vertex]:
    """Return the articulation points (cut vertices) of ``graph``.

    Iterative Hopcroft–Tarjan: a non-root vertex ``u`` is an articulation
    point iff it has a DFS child ``v`` with ``low[v] >= disc[u]``; the root
    is an articulation point iff it has at least two DFS children.
    """
    disc: Dict[Vertex, int] = {}
    low: Dict[Vertex, int] = {}
    articulation: Set[Vertex] = set()
    counter = 0

    adjacency: Dict[Vertex, List[Tuple[Vertex, int]]] = {v: [] for v in graph.vertices()}
    for edge in graph.edges():
        if edge.is_loop():
            continue
        adjacency[edge.u].append((edge.v, edge.id))
        adjacency[edge.v].append((edge.u, edge.id))

    for root in graph.vertices():
        if root in disc:
            continue
        disc[root] = low[root] = counter
        counter += 1
        root_children = 0
        stack: List[Tuple[Vertex, int, int]] = [(root, -1, 0)]
        while stack:
            vertex, parent_edge, index = stack.pop()
            neighbors = adjacency[vertex]
            advanced = False
            while index < len(neighbors):
                neighbor, edge_id = neighbors[index]
                index += 1
                if edge_id == parent_edge:
                    continue
                if neighbor not in disc:
                    disc[neighbor] = low[neighbor] = counter
                    counter += 1
                    if vertex == root:
                        root_children += 1
                    stack.append((vertex, parent_edge, index))
                    stack.append((neighbor, edge_id, 0))
                    advanced = True
                    break
                low[vertex] = min(low[vertex], disc[neighbor])
            if advanced:
                continue
            if stack:
                parent_vertex = stack[-1][0]
                low[parent_vertex] = min(low[parent_vertex], low[vertex])
                if parent_vertex != root and low[vertex] >= disc[parent_vertex]:
                    articulation.add(parent_vertex)
        if root_children >= 2:
            articulation.add(root)
    return articulation


def two_edge_connected_components(graph: UncertainGraph) -> List[FrozenSet[Vertex]]:
    """Return the 2-edge-connected components as vertex sets.

    Computed by removing the bridges and taking connected components of the
    remainder.  Vertices with no non-bridge incident edge form singleton
    components.
    """
    bridges = find_bridges(graph)
    union_find = UnionFind(graph.vertices())
    for edge in graph.edges():
        if edge.id in bridges or edge.is_loop():
            continue
        union_find.union(edge.u, edge.v)
    return [frozenset(members) for members in union_find.groups().values()]


def decompose_graph(graph: UncertainGraph) -> GraphDecomposition:
    """Compute the full decomposition (bridges, cut vertices, 2ECCs).

    This corresponds to the index the paper precomputes for the extension
    technique (Definition 3): the caller typically computes it once per
    graph and reuses it across queries with different terminal sets.
    """
    bridges = frozenset(find_bridges(graph))
    articulation = frozenset(find_articulation_points(graph))
    union_find = UnionFind(graph.vertices())
    for edge in graph.edges():
        if edge.id in bridges or edge.is_loop():
            continue
        union_find.union(edge.u, edge.v)
    components = tuple(
        frozenset(members) for members in union_find.groups().values()
    )
    component_of: Dict[Vertex, int] = {}
    for index, component in enumerate(components):
        for vertex in component:
            component_of[vertex] = index
    return GraphDecomposition(
        bridges=bridges,
        articulation_points=articulation,
        components=components,
        component_of=component_of,
    )
