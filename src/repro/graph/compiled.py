"""The compiled graph kernel: int-indexed CSR, flat union-find, bitset worlds.

Every query the engine serves — sampling-backend estimates,
:class:`~repro.engine.worlds.WorldPool` screening for search/top-k/
clustering, and the S²BDD's stratum completions — bottoms out in the same
inner loop: draw a possible world, then run connectivity over it.  Doing
that over dict-of-hashable adjacency with a dict-backed
:class:`~repro.utils.union_find.UnionFind` pays hashing and boxing costs on
every edge of every world.  This module compiles a prepared graph **once**
into flat integer form and lets the hot loops run over it many times:

* :class:`CompiledGraph` — vertices interned to ``0..n-1``, edges to
  positions ``0..m-1`` (edge iteration order), endpoints/probabilities in
  ``array('i')``/``array('d')``, and a CSR-style adjacency over the
  non-loop edges.  ``vertex_index``/``edge_index`` map back to the
  caller's hashable labels, so the high-level APIs keep their surface.
* :class:`IntUnionFind` — a flat-array union-find over ``0..n-1`` with
  union by size, iterative path halving, and an O(1) :meth:`~IntUnionFind.reset`
  (epoch stamping), so one instance serves thousands of sampled worlds
  without reallocation.
* **Bitset worlds** — a sampled world is a Python ``int`` bitmask over
  edge positions; connectivity is a single CSR walk gated on the mask.
* **Batched world sampling** — :meth:`CompiledGraph.sample_component_labels`
  draws the *same* uniforms in the *same* order as the historical
  samplers (one per non-loop edge, in edge order) and produces the exact
  per-world component labellings the dict-based path produced, so every
  downstream result stays bit-identical (``benchmarks/bench_kernel.py``
  enforces this with parity checksums).

Compiled forms are cached per graph (:func:`compile_graph`), keyed by a
fingerprint over topology *and* edge probabilities, so "compile once,
evaluate many" holds across every consumer without threading the object
through the APIs.
"""

from __future__ import annotations

import hashlib
import struct
import weakref
from array import array
from itertools import compress
from operator import gt
from typing import (
    TYPE_CHECKING,
    Dict,
    Hashable,
    Iterable,
    List,
    Sequence,
    Tuple,
)

from repro.exceptions import ConfigurationError
from repro.obs.trace import span

if TYPE_CHECKING:
    from random import Random

    from repro.graph.uncertain_graph import UncertainGraph

__all__ = [
    "CompiledGraph",
    "IntUnionFind",
    "compile_graph",
    "compiled_fingerprint",
    "invalidate_compiled",
    "is_compiled_cached",
    "refresh_compiled_probabilities",
]

Vertex = Hashable


class IntUnionFind:
    """Flat-array disjoint sets over the integers ``0..n-1``.

    The fast sibling of :class:`~repro.utils.union_find.UnionFind` for
    callers that already work in interned-index space: parents and sizes
    live in flat lists, :meth:`find` uses iterative path halving, and
    :meth:`union` merges by size.

    The structure is built for *reuse across sampled worlds*:
    :meth:`reset` restores every element to a singleton in O(1) by bumping
    an epoch counter — entries are lazily re-initialized the first time
    they are touched after a reset, so a loop that samples thousands of
    worlds touches only the vertices its edges actually reach.
    """

    __slots__ = ("_n", "_parent", "_size", "_stamp", "_epoch", "_merges")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ConfigurationError(f"IntUnionFind size must be >= 0, got {n}")
        self._n = n
        self._parent = list(range(n))
        self._size = [1] * n
        self._stamp = [0] * n
        self._epoch = 0
        self._merges = 0

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"IntUnionFind(n={self._n}, components={self.component_count})"

    def reset(self) -> None:
        """Restore every element to a singleton set in O(1)."""
        self._epoch += 1
        self._merges = 0

    def find(self, element: int) -> int:
        """Return the canonical representative of ``element``'s set."""
        parent = self._parent
        if self._stamp[element] != self._epoch:
            # First touch since the last reset: re-initialize lazily.
            self._stamp[element] = self._epoch
            parent[element] = element
            self._size[element] = 1
            return element
        while parent[element] != element:
            # Path halving: point at the grandparent and step there.  Every
            # entry on the chain was written this epoch, so no stamp checks
            # are needed past the head.
            parent[element] = parent[parent[element]]
            element = parent[element]
        return element

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; ``True`` iff a merge happened."""
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a == root_b:
            return False
        size = self._size
        if size[root_a] < size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        size[root_a] += size[root_b]
        self._merges += 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """Return ``True`` if ``a`` and ``b`` share a set."""
        return self.find(a) == self.find(b)

    def same_component(self, elements: Iterable[int]) -> bool:
        """Return ``True`` if every element shares one set (vacuously for <=1)."""
        iterator = iter(elements)
        try:
            root = self.find(next(iterator))
        except StopIteration:
            return True
        find = self.find
        return all(find(element) == root for element in iterator)

    @property
    def component_count(self) -> int:
        """Number of disjoint sets (singletons included)."""
        return self._n - self._merges

    def component_size(self, element: int) -> int:
        """Return the size of the set containing ``element``."""
        return self._size[self.find(element)]


class CompiledGraph:
    """A graph compiled once into flat integer form for the hot loops.

    Construction interns the graph's hashable vertices to ``0..n-1`` and
    its edges to positions ``0..m-1`` (edge iteration order, i.e. the
    order every reproducibility contract draws uniforms in) and builds a
    CSR adjacency over the non-loop edges.  The compiled form is
    topology-immutable: a graph whose structure changed must be recompiled
    (:func:`compile_graph` handles that via fingerprint-stamped caching),
    while a probability-only mutation can refresh the probability column
    in place (:func:`refresh_compiled_probabilities`) and keep the interned
    CSR layout.

    Attributes
    ----------
    vertices:
        Tuple mapping vertex index back to the caller's label.
    vertex_index:
        Dict mapping vertex label to its index.
    edge_ids:
        Tuple mapping edge position to the original edge id.
    edge_index:
        Dict mapping edge id to its position.
    edge_u, edge_v:
        ``array('i')`` of interned endpoint indices per edge position.
    edge_probability:
        ``array('d')`` of existence probabilities per edge position.
    csr_indptr, csr_vertices, csr_edges:
        CSR adjacency over the non-loop edges: the neighbours of vertex
        ``x`` are ``csr_vertices[csr_indptr[x]:csr_indptr[x + 1]]`` with
        the connecting edge positions in ``csr_edges`` at the same slots.
    """

    __slots__ = (
        "vertices",
        "vertex_index",
        "edge_ids",
        "edge_index",
        "edge_u",
        "edge_v",
        "edge_probability",
        "csr_indptr",
        "csr_vertices",
        "csr_edges",
        "_probs",
        "_bits",
        "_nonloop_draws",
        "_nonloop_positions",
        "_neighbors",
        "_identity",
    )

    def __init__(self, graph: "UncertainGraph") -> None:
        self.vertices: Tuple[Vertex, ...] = tuple(graph.vertices())
        self.vertex_index: Dict[Vertex, int] = {
            vertex: position for position, vertex in enumerate(self.vertices)
        }
        n = len(self.vertices)
        index = self.vertex_index

        edge_ids: List[int] = []
        edge_u: List[int] = []
        edge_v: List[int] = []
        probabilities: List[float] = []
        nonloop_draws: List[Tuple[int, int, float]] = []
        nonloop_positions: List[int] = []
        degree = [0] * n
        for position, edge in enumerate(graph.edges()):
            u = index[edge.u]
            v = index[edge.v]
            edge_ids.append(edge.id)
            edge_u.append(u)
            edge_v.append(v)
            probabilities.append(edge.probability)
            if u != v:
                nonloop_draws.append((u, v, edge.probability))
                nonloop_positions.append(position)
                degree[u] += 1
                degree[v] += 1

        self.edge_ids: Tuple[int, ...] = tuple(edge_ids)
        self.edge_index: Dict[int, int] = {
            edge_id: position for position, edge_id in enumerate(edge_ids)
        }
        self.edge_u = array("i", edge_u)
        self.edge_v = array("i", edge_v)
        self.edge_probability = array("d", probabilities)
        #: Plain-list mirror of the probabilities: list iteration is what
        #: the sampling inner loops feed to ``map``/``zip``.
        self._probs: List[float] = probabilities
        self._bits: List[int] = [1 << position for position in range(len(edge_ids))]
        self._nonloop_draws = nonloop_draws
        self._nonloop_positions = nonloop_positions
        self._identity: List[int] = list(range(n))

        # CSR over the non-loop edges (each appears under both endpoints),
        # filled in edge order so the layout is deterministic.
        indptr = array("i", [0]) * (n + 1)
        for d_index, d in enumerate(degree):
            indptr[d_index + 1] = indptr[d_index] + d
        total = indptr[n]
        zero = array("i", [0])
        csr_vertices = zero * total
        csr_edges = zero * total
        cursor = list(indptr[:n])
        for position, (u, v, _) in zip(nonloop_positions, nonloop_draws):
            slot = cursor[u]
            csr_vertices[slot] = v
            csr_edges[slot] = position
            cursor[u] = slot + 1
            slot = cursor[v]
            csr_vertices[slot] = u
            csr_edges[slot] = position
            cursor[v] = slot + 1
        self.csr_indptr = indptr
        self.csr_vertices = csr_vertices
        self.csr_edges = csr_edges
        #: Hot-loop form of the CSR: per-vertex tuples of (edge position,
        #: neighbour index) pairs, so the walk avoids index arithmetic.
        self._neighbors: List[Tuple[Tuple[int, int], ...]] = [
            tuple(
                zip(
                    csr_edges[indptr[x] : indptr[x + 1]],
                    csr_vertices[indptr[x] : indptr[x + 1]],
                )
            )
            for x in range(n)
        ]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of interned vertices ``n``."""
        return len(self.vertices)

    @property
    def num_edges(self) -> int:
        """Number of edge positions ``m`` (loops included)."""
        return len(self.edge_ids)

    @property
    def num_nonloop_edges(self) -> int:
        """Number of non-loop edges (the ones the CSR covers)."""
        return len(self._nonloop_draws)

    def __repr__(self) -> str:
        return (
            f"CompiledGraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"nonloop={self.num_nonloop_edges})"
        )

    def vertex_indices(self, labels: Sequence[Vertex]) -> List[int]:
        """Intern a sequence of vertex labels (raises ``KeyError`` on misses)."""
        index = self.vertex_index
        return [index[label] for label in labels]

    def _refresh_probabilities(self, probabilities: Sequence[float]) -> None:
        """Swap in new per-position probabilities, keeping the topology.

        The incremental half of the dynamic-graph update path: every
        structure interned at construction (vertex/edge interning, CSR,
        neighbour tuples, bit masks) depends only on topology and stays,
        while the three probability views — the ``array('d')`` column, its
        plain-list mirror, and the non-loop draw triples — are rebuilt
        from ``probabilities`` (one float per edge position, in the same
        edge-iteration order the constructor saw).
        """
        if len(probabilities) != len(self.edge_ids):
            raise ValueError(
                f"expected {len(self.edge_ids)} probabilities, "
                f"got {len(probabilities)}"
            )
        self._probs[:] = probabilities
        self.edge_probability = array("d", self._probs)
        self._nonloop_draws = [
            (u, v, self._probs[position])
            for position, (u, v, _) in zip(self._nonloop_positions, self._nonloop_draws)
        ]

    # ------------------------------------------------------------------
    # Bitset worlds
    # ------------------------------------------------------------------
    def sample_exist_flags(self, rng: "Random") -> List[bool]:
        """Draw one world as per-edge existence flags.

        Consumes exactly one uniform per edge (loops included) in edge
        order from ``rng`` — the stream contract of
        :func:`~repro.graph.possible_world.sample_possible_world` and the
        sampling baseline.
        """
        rnd = rng.random
        draws = [rnd() for _ in self._probs]
        return list(map(gt, self._probs, draws))

    def sample_edge_mask(self, rng: "Random") -> int:
        """Draw one world as an ``int`` bitmask over edge positions.

        Bit ``j`` is set iff the edge at position ``j`` exists.  Consumes
        the same uniform stream as :meth:`sample_exist_flags`.
        """
        return self.mask_from_flags(self.sample_exist_flags(rng))

    def mask_from_flags(self, flags: Sequence[object]) -> int:
        """Pack per-position truthy flags into an edge bitmask."""
        return sum(compress(self._bits, flags))

    def flags_from_mask(self, mask: int) -> bytearray:
        """Unpack an edge bitmask into a per-position flag array."""
        flags = bytearray(self.num_edges)
        mask &= (1 << self.num_edges) - 1
        while mask:
            low = mask & -mask
            flags[low.bit_length() - 1] = 1
            mask ^= low
        return flags

    def mask_from_edge_ids(self, edge_ids: Iterable[int]) -> int:
        """Bitmask of the world whose existing *edge ids* are given."""
        index = self.edge_index
        mask = 0
        for edge_id in edge_ids:
            mask |= 1 << index[edge_id]
        return mask

    def edge_ids_in_mask(self, mask: int) -> List[int]:
        """The original edge ids set in ``mask``, in position order."""
        ids = self.edge_ids
        mask &= (1 << len(ids)) - 1
        existing: List[int] = []
        while mask:
            low = mask & -mask
            existing.append(ids[low.bit_length() - 1])
            mask ^= low
        return existing

    # ------------------------------------------------------------------
    # Connectivity over one world
    # ------------------------------------------------------------------
    def connected_with_flags(
        self, flags: Sequence[object], targets: Sequence[int]
    ) -> bool:
        """Are all ``targets`` (vertex indices) connected under ``flags``?

        A CSR walk from the first target gated on the per-edge flags, with
        early exit as soon as every other target has been reached.
        """
        if len(targets) <= 1:
            return True
        neighbors = self._neighbors
        n = len(neighbors)
        seen = bytearray(n)
        wanted = bytearray(n)
        first = targets[0]
        remaining = 0
        for target in targets[1:]:
            if target != first and not wanted[target]:
                wanted[target] = 1
                remaining += 1
        if not remaining:
            return True
        seen[first] = 1
        stack = [first]
        pop = stack.pop
        push = stack.append
        while stack:
            x = pop()
            for j, y in neighbors[x]:
                if flags[j] and not seen[y]:
                    seen[y] = 1
                    if wanted[y]:
                        remaining -= 1
                        if not remaining:
                            return True
                    push(y)
        return False

    def connected_in_mask(self, mask: int, targets: Sequence[int]) -> bool:
        """Are all ``targets`` connected in the world bitmask ``mask``?"""
        if len(targets) <= 1:
            return True
        return self.connected_with_flags(self.flags_from_mask(mask), targets)

    def component_labels_in_mask(self, mask: int) -> Tuple[int, ...]:
        """Per-vertex component labels of the world bitmask ``mask``.

        Labels follow the same union scheme as
        :meth:`sample_component_labels`, so a sampled world's mask maps to
        exactly the labelling the batched sampler would store for it.
        """
        flags = self.flags_from_mask(mask)
        parent = self._identity[:]
        for position, (u, v, _) in zip(self._nonloop_positions, self._nonloop_draws):
            if flags[position]:
                while parent[u] != u:
                    parent[u] = parent[parent[u]]
                    u = parent[u]
                while parent[v] != v:
                    parent[v] = parent[parent[v]]
                    v = parent[v]
                if u != v:
                    parent[u] = v
        return _root_labels(parent, range(len(parent)))

    # ------------------------------------------------------------------
    # Batched world sampling (the WorldPool kernel)
    # ------------------------------------------------------------------
    def sample_component_labels(
        self, count: int, generator: "Random"
    ) -> List[Tuple[int, ...]]:
        """Draw ``count`` worlds as per-vertex component labellings.

        Stream contract: one uniform per **non-loop** edge, in edge order,
        per world — the contract every :class:`~repro.engine.worlds.WorldPool`
        reproducibility promise is written against.  The union scheme and
        the returned root labels are bit-identical to the pre-kernel
        sampler's (and partition-identical to the original dict-based
        path), so pools built before and after the kernel compare equal
        label-for-label.
        """
        rnd = generator.random
        draws = self._nonloop_draws
        identity = self._identity
        n = len(identity)
        vertex_range = range(n)
        worlds: List[Tuple[int, ...]] = []
        for _ in range(count):
            parent = identity[:]
            for u, v, probability in draws:
                if rnd() < probability:
                    # Union with path halving; the labelling only needs the
                    # partition, not any particular representative.
                    while parent[u] != u:
                        parent[u] = parent[parent[u]]
                        u = parent[u]
                    while parent[v] != v:
                        parent[v] = parent[parent[v]]
                        v = parent[v]
                    if u != v:
                        parent[u] = v
            worlds.append(_root_labels(parent, vertex_range))
        return worlds


def _root_labels(parent: List[int], vertex_range: range) -> Tuple[int, ...]:
    """Resolve every entry of a parent forest to its root, with path halving.

    This is the exact extraction loop of the pre-kernel sampler, kept
    bit-for-bit so labellings (not just partitions) stay identical to the
    historical pools.  Path halving during the walk keeps later walks over
    shared chains short.
    """
    labels = []
    append = labels.append
    for root in vertex_range:
        while parent[root] != root:
            parent[root] = parent[parent[root]]
            root = parent[root]
        append(root)
    return tuple(labels)


# ----------------------------------------------------------------------
# The compile cache
# ----------------------------------------------------------------------
#: graph -> (fingerprint, CompiledGraph).  Weak keys: forgetting a graph
#: drops its compiled form with it.
_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def compiled_fingerprint(graph: "UncertainGraph") -> Tuple:
    """Stamp invalidating a compiled graph on topology *or* probability change.

    The topology fingerprint alone is not enough: the compiled form bakes
    in the edge probabilities (they drive every sampling loop), so the
    stamp covers both — the same invalidation rule the engine's world-pool
    cache uses.

    The probability component is a SHA-256 over the IEEE-754 bytes of the
    probabilities in edge-id order, not ``hash(tuple(...))``: a stable
    digest keeps the stamp process-independent (reprolint RNG002 — the
    ``spawn_rng`` bug class), while staying O(1) to store per cache entry.
    """
    payload = struct.pack(
        f"<{graph.num_edges}d", *(edge.probability for edge in graph.edges())
    )
    return graph.topology_fingerprint() + (hashlib.sha256(payload).hexdigest(),)


def compile_graph(graph: "UncertainGraph") -> CompiledGraph:
    """Return the (cached) compiled form of ``graph``, compiling if needed.

    Entries are stamped with :func:`compiled_fingerprint`, so a graph
    mutated after compilation is transparently recompiled on next use.
    """
    fingerprint = compiled_fingerprint(graph)
    entry = _CACHE.get(graph)
    if entry is not None and entry[0] == fingerprint:
        return entry[1]
    with span("kernel.compile"):
        compiled = CompiledGraph(graph)
    _CACHE[graph] = (fingerprint, compiled)
    return compiled


def is_compiled_cached(graph: "UncertainGraph") -> bool:
    """Whether ``graph`` has a current compiled form in the cache."""
    entry = _CACHE.get(graph)
    return entry is not None and entry[0] == compiled_fingerprint(graph)


def refresh_compiled_probabilities(graph: "UncertainGraph") -> CompiledGraph:
    """Re-sync ``graph``'s compiled form after a probability-only mutation.

    If the cache holds a compiled form whose *topology* component matches
    (the probability digest is the fingerprint's last element, the
    topology prefix everything before it), only the probability column is
    refreshed in place — the interned CSR survives, which is what makes a
    probability delta cheap.  Otherwise this falls back to a full compile.
    The refreshed form is bit-identical to a fresh compile: probabilities
    land in the same edge-iteration order the constructor would see.
    """
    fingerprint = compiled_fingerprint(graph)
    entry = _CACHE.get(graph)
    if entry is None or entry[0][:-1] != fingerprint[:-1]:
        compiled = CompiledGraph(graph)
    else:
        compiled = entry[1]
        compiled._refresh_probabilities(
            [edge.probability for edge in graph.edges()]
        )
    _CACHE[graph] = (fingerprint, compiled)
    return compiled


def invalidate_compiled(graph: "UncertainGraph") -> None:
    """Drop ``graph``'s compiled form, if any.

    The topology-delta escape hatch: edge-id recycling (remove an edge,
    re-add one under the same id) can leave both the topology fingerprint
    and the compiled fingerprint unchanged while the structure differs, so
    the update path invalidates explicitly instead of trusting the stamp.
    """
    _CACHE.pop(graph, None)
