"""Edge-list I/O for uncertain graphs.

The on-disk format is the common whitespace-separated edge list used by
uncertain-graph datasets (KONECT, SNAP dumps with probabilities appended):

.. code-block:: text

    # comment lines start with '#' or '%'
    u v probability

Vertex labels are kept as strings unless every label parses as an integer,
in which case they are converted so loaded graphs match the generators'
integer vertex convention.
"""

from __future__ import annotations

import os
from typing import Iterable, List, TextIO, Tuple, Union

from repro.exceptions import DatasetError
from repro.graph.uncertain_graph import UncertainGraph

__all__ = ["read_edge_list", "write_edge_list", "parse_edge_list"]

PathLike = Union[str, "os.PathLike[str]"]


def parse_edge_list(lines: Iterable[str], *, name: str = "") -> UncertainGraph:
    """Parse an iterable of edge-list lines into an :class:`UncertainGraph`."""
    triples: List[Tuple[str, str, float]] = []
    for line_number, raw_line in enumerate(lines, start=1):
        line = raw_line.strip()
        if not line or line.startswith("#") or line.startswith("%"):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise DatasetError(
                f"line {line_number}: expected 'u v [probability]', got {raw_line!r}"
            )
        u, v = parts[0], parts[1]
        probability = 1.0
        if len(parts) >= 3:
            try:
                probability = float(parts[2])
            except ValueError as exc:
                raise DatasetError(
                    f"line {line_number}: invalid probability {parts[2]!r}"
                ) from exc
        triples.append((u, v, probability))
    if not triples:
        raise DatasetError("edge list contains no edges")

    if all(_is_int(u) and _is_int(v) for u, v, _ in triples):
        converted = [(int(u), int(v), p) for u, v, p in triples]
        return UncertainGraph.from_edge_list(converted, name=name)
    return UncertainGraph.from_edge_list(triples, name=name)


def read_edge_list(path: PathLike, *, name: str = "") -> UncertainGraph:
    """Read an uncertain graph from an edge-list file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_edge_list(handle, name=name or os.path.basename(str(path)))


def write_edge_list(graph: UncertainGraph, path_or_file: Union[PathLike, TextIO]) -> None:
    """Write ``graph`` to an edge-list file (or open text handle)."""
    def _write(handle: TextIO) -> None:
        handle.write(f"# uncertain graph {graph.name or 'unnamed'}\n")
        handle.write(f"# vertices={graph.num_vertices} edges={graph.num_edges}\n")
        for u, v, probability in graph.to_edge_list():
            handle.write(f"{u} {v} {probability:.10g}\n")

    if hasattr(path_or_file, "write"):
        _write(path_or_file)  # type: ignore[arg-type]
    else:
        with open(path_or_file, "w", encoding="utf-8") as handle:  # type: ignore[arg-type]
            _write(handle)


def _is_int(token: str) -> bool:
    try:
        int(token)
    except ValueError:
        return False
    return True
