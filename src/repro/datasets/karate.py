"""The Zachary karate-club graph.

This is the one evaluation dataset of the paper that can be embedded
verbatim: the canonical 34-vertex, 78-edge social network recorded by
Zachary (1977), identical to the KONECT copy the paper uses.  Edge
existence probabilities are assigned uniformly at random (seeded), exactly
as in the paper's setup for the small accuracy datasets.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.graph.probability_models import assign_uniform_probabilities
from repro.graph.uncertain_graph import UncertainGraph
from repro.utils.rng import RandomLike

__all__ = ["KARATE_EDGES", "karate_club_graph"]

#: The 78 undirected edges of Zachary's karate club, 1-indexed as published.
KARATE_EDGES: List[Tuple[int, int]] = [
    (1, 2), (1, 3), (1, 4), (1, 5), (1, 6), (1, 7), (1, 8), (1, 9), (1, 11),
    (1, 12), (1, 13), (1, 14), (1, 18), (1, 20), (1, 22), (1, 32),
    (2, 3), (2, 4), (2, 8), (2, 14), (2, 18), (2, 20), (2, 22), (2, 31),
    (3, 4), (3, 8), (3, 9), (3, 10), (3, 14), (3, 28), (3, 29), (3, 33),
    (4, 8), (4, 13), (4, 14),
    (5, 7), (5, 11),
    (6, 7), (6, 11), (6, 17),
    (7, 17),
    (9, 31), (9, 33), (9, 34),
    (10, 34),
    (14, 34),
    (15, 33), (15, 34),
    (16, 33), (16, 34),
    (19, 33), (19, 34),
    (20, 34),
    (21, 33), (21, 34),
    (23, 33), (23, 34),
    (24, 26), (24, 28), (24, 30), (24, 33), (24, 34),
    (25, 26), (25, 28), (25, 32),
    (26, 32),
    (27, 30), (27, 34),
    (28, 34),
    (29, 32), (29, 34),
    (30, 33), (30, 34),
    (31, 33), (31, 34),
    (32, 33), (32, 34),
    (33, 34),
]


def karate_club_graph(*, rng: RandomLike = 42) -> UncertainGraph:
    """Return the karate-club uncertain graph with random probabilities.

    Parameters
    ----------
    rng:
        Seed or generator for the uniform probability assignment.  The
        default fixed seed makes repeated loads identical, which the
        accuracy experiments rely on.
    """
    graph = UncertainGraph(name="karate")
    for u, v in KARATE_EDGES:
        graph.add_edge(u, v, 0.5)
    assign_uniform_probabilities(graph, low=0.05, high=1.0, rng=rng)
    return graph
