"""Datasets used by the paper's evaluation (Table 2) and their substitutes.

The Zachary karate club is embedded verbatim; the remaining datasets are
seeded synthetic graphs from the same structural family, see DESIGN.md for
the substitution rationale.  :func:`load_dataset` is the single entry point
used by the experiment harness, the benchmarks and the examples.
"""

from repro.datasets.karate import KARATE_EDGES, karate_club_graph
from repro.datasets.registry import (
    DatasetSpec,
    PaperStats,
    available_datasets,
    dataset_spec,
    load_dataset,
)

__all__ = [
    "DatasetSpec",
    "KARATE_EDGES",
    "PaperStats",
    "available_datasets",
    "dataset_spec",
    "karate_club_graph",
    "load_dataset",
]
