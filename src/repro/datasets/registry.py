"""Dataset registry mirroring Table 2 of the paper.

The paper evaluates on seven datasets.  The karate club is embedded
verbatim; the other six cannot be shipped offline and are replaced by
seeded synthetic graphs from the same structural family (see DESIGN.md,
"Substitutions").  Each dataset is registered with the statistics the paper
reports so Table 2 can be regenerated side by side with the substitutes'
actual statistics.

Two scales are available:

* ``"bench"`` (default) — sizes small enough for the pure-Python benchmark
  harness to finish in seconds/minutes,
* ``"paper"`` — the original vertex counts (generation is fast, but running
  reliability queries on them in pure Python takes hours; provided for
  completeness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import DatasetError
from repro.graph.generators import (
    affiliation_graph,
    coauthorship_graph,
    protein_interaction_graph,
    road_network_graph,
)
from repro.graph.uncertain_graph import UncertainGraph
from repro.datasets.karate import karate_club_graph
from repro.utils.rng import RandomLike

__all__ = ["DatasetSpec", "PaperStats", "available_datasets", "load_dataset", "dataset_spec"]


@dataclass(frozen=True)
class PaperStats:
    """The statistics Table 2 reports for the original dataset."""

    vertices: int
    edges: int
    average_degree: float
    average_probability: float


@dataclass(frozen=True)
class DatasetSpec:
    """One row of the dataset registry."""

    name: str
    abbreviation: str
    kind: str
    description: str
    paper: PaperStats
    small: bool  # True for the accuracy datasets (exact answer computable)


_SPECS: Dict[str, DatasetSpec] = {
    "karate": DatasetSpec(
        name="Zachary-karate-club",
        abbreviation="Karate",
        kind="Social",
        description="Zachary's karate club (embedded verbatim); uniform probabilities.",
        paper=PaperStats(34, 78, 4.59, 0.527),
        small=True,
    ),
    "amrv": DatasetSpec(
        name="American-Revolution",
        abbreviation="Am-Rv",
        kind="Affiliation",
        description="Synthetic bipartite affiliation graph (Am-Rv substitute).",
        paper=PaperStats(141, 160, 2.27, 0.528),
        small=True,
    ),
    "dblp1": DatasetSpec(
        name="DBLP before 2000",
        abbreviation="DBLP1",
        kind="Coauthorship",
        description="Synthetic community co-authorship graph (DBLP substitute).",
        paper=PaperStats(25_871, 108_459, 8.38, 0.222),
        small=False,
    ),
    "dblp2": DatasetSpec(
        name="DBLP after 2000",
        abbreviation="DBLP2",
        kind="Coauthorship",
        description="Synthetic community co-authorship graph, sparser variant.",
        paper=PaperStats(48_938, 136_034, 5.56, 0.203),
        small=False,
    ),
    "tokyo": DatasetSpec(
        name="Tokyo",
        abbreviation="Tokyo",
        kind="Road network",
        description="Synthetic near-planar road network (Tokyo substitute).",
        paper=PaperStats(26_370, 32_298, 2.45, 0.391),
        small=False,
    ),
    "nyc": DatasetSpec(
        name="New York City",
        abbreviation="NYC",
        kind="Road network",
        description="Synthetic near-planar road network, larger variant.",
        paper=PaperStats(180_188, 208_441, 2.31, 0.294),
        small=False,
    ),
    "hitd": DatasetSpec(
        name="Hit-direct",
        abbreviation="Hit-d",
        kind="Protein",
        description="Synthetic dense protein-interaction network (Hit-direct substitute).",
        paper=PaperStats(18_256, 248_770, 27.25, 0.470),
        small=False,
    ),
}

#: Sizes used when ``scale="bench"`` (kept pure-Python friendly).
_BENCH_SIZES: Dict[str, Dict[str, int]] = {
    "amrv": {"people": 106, "organizations": 35},
    "dblp1": {"authors": 600},
    "dblp2": {"authors": 900},
    "tokyo": {"rows": 16, "cols": 16},
    "nyc": {"rows": 26, "cols": 26},
    "hitd": {"proteins": 220},
}

#: Sizes used when ``scale="paper"`` (matching Table 2 vertex counts).
_PAPER_SIZES: Dict[str, Dict[str, int]] = {
    "amrv": {"people": 106, "organizations": 35},
    "dblp1": {"authors": 25_871},
    "dblp2": {"authors": 48_938},
    "tokyo": {"rows": 162, "cols": 163},
    "nyc": {"rows": 424, "cols": 425},
    "hitd": {"proteins": 18_256},
}


def available_datasets() -> List[str]:
    """Return the dataset keys in registry order."""
    return list(_SPECS)


def dataset_spec(key: str) -> DatasetSpec:
    """Return the registry entry for ``key``."""
    try:
        return _SPECS[key]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {key!r}; available: {', '.join(_SPECS)}"
        ) from None


def load_dataset(
    key: str,
    *,
    scale: str = "bench",
    rng: RandomLike = None,
) -> UncertainGraph:
    """Build the dataset (or its substitute) identified by ``key``.

    Parameters
    ----------
    key:
        One of :func:`available_datasets`.
    scale:
        ``"bench"`` (default) for pure-Python-friendly sizes, ``"paper"``
        for the original Table 2 vertex counts.
    rng:
        Seed or generator; when ``None`` a fixed per-dataset seed is used so
        that repeated loads are identical.
    """
    spec = dataset_spec(key)
    if scale not in ("bench", "paper"):
        raise DatasetError(f"unknown scale {scale!r}; use 'bench' or 'paper'")
    sizes = (_PAPER_SIZES if scale == "paper" else _BENCH_SIZES).get(key, {})
    seed: RandomLike = rng if rng is not None else _default_seed(key)

    if key == "karate":
        return karate_club_graph(rng=seed)
    if key == "amrv":
        return affiliation_graph(
            sizes["people"], sizes["organizations"], memberships_per_person=1.45,
            rng=seed, name=spec.abbreviation,
        )
    if key in ("dblp1", "dblp2"):
        papers = 2.8 if key == "dblp1" else 2.0
        return coauthorship_graph(
            sizes["authors"], papers_per_author=papers, rng=seed, name=spec.abbreviation
        )
    if key in ("tokyo", "nyc"):
        return road_network_graph(
            sizes["rows"], sizes["cols"], rng=seed, name=spec.abbreviation
        )
    if key == "hitd":
        return protein_interaction_graph(
            sizes["proteins"], average_degree=27.0, rng=seed, name=spec.abbreviation
        )
    raise DatasetError(f"no builder registered for dataset {key!r}")


def _default_seed(key: str) -> int:
    """Stable per-dataset seed derived from the key name."""
    return sum(ord(character) for character in key) * 7919
