"""Command-line entry point of the cluster: router + supervised replicas.

Usage::

    python -m repro.cluster --replicas 2 --snapshot-dir snap/
    python -m repro.cluster --replicas 4 --snapshot-dir snap/ \
        --graphs karate,tokyo --samples 1000
    python -m repro.cluster --snapshot-dir snap/ --build-only

(Installed as the ``repro-cluster`` console script.)  When
``--snapshot-dir`` does not hold a snapshot yet, one is built first from
``--graphs``/``--backend``/``--samples``/``--seed`` (a one-time cost —
later starts are warm); when it does, those options must be omitted, the
snapshot's own config wins.  ``--build-only`` builds the snapshot and
exits, for CI and deploy pipelines that bake snapshots ahead of time.

The bound address is printed as the first stdout line in the same
parseable shape as ``repro.service``; point a
:class:`~repro.cluster.client.ClusterClient` (or any service client) at
it.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading
from typing import List, Optional

from repro.cluster.router import Router
from repro.cluster.supervisor import ReplicaSupervisor
from repro.datasets import available_datasets
from repro.engine.config import EstimatorConfig
from repro.engine.registry import available_backends
from repro.exceptions import ReproError
from repro.obs.trace import disable as disable_tracing
from repro.service.catalog import DatasetSource, GraphCatalog

__all__ = ["main"]

_CONFIG_OPTIONS = ("--graphs", "--backend", "--samples", "--seed", "--scale")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description="Serve reliability queries from a replicated cluster.",
    )
    parser.add_argument(
        "--snapshot-dir",
        required=True,
        metavar="DIR",
        help="prepared-state snapshot directory (built here when missing)",
    )
    parser.add_argument(
        "--replicas", type=int, default=2, metavar="N",
        help="replica service processes to run",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8360,
        help="router bind port (0 for ephemeral; replicas always ephemeral)",
    )
    parser.add_argument(
        "--route-by", choices=["query", "graph"], default="query",
        help=(
            "ring key granularity: per-query spreads one graph's load over "
            "all replicas; per-graph pins each graph to one replica"
        ),
    )
    parser.add_argument(
        "--shared-store",
        default=None,
        metavar="PATH",
        help=(
            "sqlite file of the cross-replica result tier; 'none' disables "
            "it (default: shared_results.sqlite inside the snapshot dir)"
        ),
    )
    parser.add_argument(
        "--graphs",
        default=None,
        metavar="KEYS",
        help=(
            "datasets to snapshot when building one "
            f"(available: {', '.join(available_datasets())}; default karate)"
        ),
    )
    parser.add_argument(
        "--scale", choices=["bench", "paper"], default="bench",
        help="dataset scale when building a snapshot",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help=(
            "backend when building a snapshot "
            f"(registered: {', '.join(available_backends())}; default sampling)"
        ),
    )
    parser.add_argument(
        "--samples", type=int, default=None,
        help="sample budget s when building a snapshot (default 1000)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="engine seed when building a snapshot (default: service default)",
    )
    parser.add_argument(
        "--build-only", action="store_true",
        help="build the snapshot (if missing) and exit without serving",
    )
    parser.add_argument(
        "--allow-updates", action="store_true",
        help=(
            "let replicas accept POST /update graph deltas (off by default: "
            "snapshot-warmed replicas serve read-only); the router "
            "broadcasts each update to every live replica"
        ),
    )
    parser.add_argument(
        "--slow-query-log", type=float, default=None, metavar="SECONDS",
        help=(
            "pass --slow-query-log SECONDS to every replica: queries "
            "slower than the threshold are logged and kept in each "
            "replica's /stats (default: off)"
        ),
    )
    parser.add_argument(
        "--no-tracing", action="store_true",
        help=(
            "disable request tracing on the router and every replica "
            "(X-Repro-Trace headers and 'timings' requests are ignored)"
        ),
    )
    return parser


def _has_snapshot(directory: str) -> bool:
    return os.path.isfile(os.path.join(directory, "catalog.json"))


def _build_snapshot(args: argparse.Namespace) -> None:
    config = EstimatorConfig(
        backend=args.backend or "sampling",
        samples=args.samples if args.samples is not None else 1_000,
        rng=args.seed,
    )
    catalog = GraphCatalog(config)
    keys = [
        key.strip()
        for key in (args.graphs or "karate").split(",")
        if key.strip()
    ]
    for key in keys:
        catalog.register(key, DatasetSource(key, scale=args.scale))
    catalog.save_snapshot(args.snapshot_dir)
    print(
        f"built snapshot of {', '.join(catalog.names())} in "
        f"{args.snapshot_dir} (backend {catalog.config.backend!r}, "
        f"s={catalog.config.samples})",
        flush=True,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Build/load the snapshot, launch replicas + router, serve until stopped."""
    args = build_parser().parse_args(argv)
    try:
        if _has_snapshot(args.snapshot_dir):
            overridden = [
                option
                for option, value in zip(
                    _CONFIG_OPTIONS,
                    (args.graphs, args.backend, args.samples, args.seed, None),
                )
                if value is not None
            ]
            if overridden:
                print(
                    f"error: {args.snapshot_dir} already holds a snapshot, "
                    "which carries its own graphs and config; drop "
                    f"{', '.join(overridden)} or point --snapshot-dir "
                    "somewhere fresh",
                    file=sys.stderr,
                )
                return 2
        else:
            _build_snapshot(args)
        if args.build_only:
            return 0

        store_path: Optional[str]
        if args.shared_store == "none":
            store_path = None
        elif args.shared_store is not None:
            store_path = args.shared_store
        else:
            store_path = os.path.join(args.snapshot_dir, "shared_results.sqlite")

        if args.no_tracing:
            disable_tracing()
        extra_args: List[str] = []
        if args.allow_updates:
            extra_args.append("--allow-updates")
        if args.slow_query_log is not None:
            extra_args += ["--slow-query-log", str(args.slow_query_log)]
        if args.no_tracing:
            extra_args.append("--no-tracing")
        supervisor = ReplicaSupervisor(
            args.snapshot_dir,
            replicas=args.replicas,
            shared_store=store_path,
            host=args.host,
            extra_args=extra_args or None,
        )
        supervisor.start()
        router = Router(
            supervisor, host=args.host, port=args.port, route_by=args.route_by
        )
        router.start_background()
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    print(
        f"routing on http://{router.address} "
        f"(replicas={args.replicas}, route_by={args.route_by}, "
        f"shared store={'off' if store_path is None else store_path}, "
        f"snapshot={args.snapshot_dir})",
        flush=True,
    )
    for slot in supervisor.describe():
        endpoint = slot["endpoint"]
        where = f"at http://{endpoint}" if endpoint else "down"
        print(f"  {slot['member']} {where}", flush=True)

    stop = threading.Event()

    def _signal_handler(signum, frame) -> None:  # noqa: ARG001
        stop.set()

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, _signal_handler)
        except ValueError:  # not the main thread (embedded use)
            break
    try:
        stop.wait()
    finally:
        router.close()
        supervisor.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
