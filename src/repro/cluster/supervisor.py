"""The replica supervisor: N shared-nothing service processes, kept alive.

Each replica is a full ``python -m repro.service`` process warm-started
from one snapshot directory (``--snapshot``) and, optionally, wired to
the shared sqlite result tier (``--shared-store``).  Shared-nothing is
deliberate: replicas share *no live state* — only the immutable snapshot
and the append-only result store — so one replica crashing, hanging, or
being killed cannot corrupt another, and scaling out is just launching
more of the same process.

The supervisor owns the replica lifecycle:

* **launch** — spawn each replica on an ephemeral port and parse the
  bound address from its banner line (the same line the CI smoke job
  parses), so replicas never fight over ports;
* **monitor** — a daemon thread polls the processes and respawns any
  that die, with exponential backoff capped at
  :data:`MAX_RESTART_DELAY` so a crash-looping replica cannot busy-spin
  the machine;
* **identity** — each replica occupies a stable *slot* (``replica-0``
  ...), which is what the router's hash ring is built over: a respawn
  changes the port, never the placement of keys.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import ClusterError

__all__ = ["ReplicaHandle", "ReplicaSupervisor"]

#: The service banner: ``serving <names> on http://<host>:<port> (...)``.
_BANNER = re.compile(r"^serving .* on http://([^:]+):(\d+) ")

#: Seconds to wait for a fresh replica's banner before declaring it dead.
_STARTUP_TIMEOUT = 60.0

#: Restart backoff: ``RESTART_BASE_DELAY * 2**(restarts-1)``, capped.
RESTART_BASE_DELAY = 0.25
MAX_RESTART_DELAY = 5.0


@dataclass
class ReplicaHandle:
    """One replica slot: its identity, current process, and counters."""

    key: str
    host: str = ""
    port: int = 0
    process: Optional[subprocess.Popen] = field(default=None, repr=False)
    restarts: int = 0
    restart_at: float = 0.0

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"


class ReplicaSupervisor:
    """Launch and babysit N replica service processes from one snapshot.

    Parameters
    ----------
    snapshot_dir:
        A snapshot directory written by ``GraphCatalog.save_snapshot``;
        every replica warm-starts from it.
    replicas:
        How many replica slots to run.
    shared_store:
        Path of the shared sqlite result tier, or ``None`` for none.
    host:
        Bind address the replicas listen on.
    extra_args:
        Additional ``repro.service`` CLI arguments appended verbatim to
        every replica's command line (e.g. ``["--cache-bytes", "1048576"]``).
    poll_interval:
        Seconds between monitor-thread liveness sweeps.

    Notes
    -----
    The supervisor is synchronous and thread-safe; the asyncio router
    calls into it from its loop thread only for cheap snapshot reads
    (:meth:`live_endpoints`).  Replica stdout is drained continuously on
    daemon threads — a replica blocked writing its logs would otherwise
    stall, which is indistinguishable from a hang.
    """

    def __init__(
        self,
        snapshot_dir: str,
        *,
        replicas: int = 2,
        shared_store: Optional[str] = None,
        host: str = "127.0.0.1",
        extra_args: Optional[List[str]] = None,
        poll_interval: float = 0.2,
    ) -> None:
        if replicas <= 0:
            raise ClusterError(f"a cluster needs >= 1 replica, got {replicas!r}")
        if not os.path.isdir(snapshot_dir):
            raise ClusterError(
                f"snapshot directory {snapshot_dir!r} does not exist; build "
                "one with GraphCatalog.save_snapshot() or "
                "python -m repro.cluster --build-only"
            )
        self._snapshot_dir = snapshot_dir
        self._shared_store = shared_store
        self._host = host
        self._extra_args = list(extra_args or [])
        self._poll_interval = poll_interval
        self._handles: Dict[str, ReplicaHandle] = {
            f"replica-{index}": ReplicaHandle(key=f"replica-{index}")
            for index in range(replicas)
        }
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ReplicaSupervisor":
        """Launch every replica and the monitor thread; returns when all
        replicas have printed their bound addresses."""
        for handle in self._handles.values():
            self._spawn(handle)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-cluster-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def stop(self) -> None:
        """Terminate every replica and stop monitoring."""
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=10.0)
            self._monitor = None
        # Snapshot the process list under the lock (the monitor thread is
        # joined, but _spawn writes handle.process under it — LOCK001).
        with self._lock:
            processes = [
                handle.process
                for handle in self._handles.values()
                if handle.process is not None
            ]
        for process in processes:
            if process.poll() is None:
                process.terminate()
        for process in processes:
            try:
                process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10.0)

    def __enter__(self) -> "ReplicaSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def keys(self) -> List[str]:
        """Every replica slot identity (the ring's member set), in order."""
        return list(self._handles)

    def live_endpoints(self) -> Dict[str, str]:
        """``{slot: "host:port"}`` of replicas currently alive and bound."""
        with self._lock:
            return {
                key: handle.address
                for key, handle in self._handles.items()
                if handle.alive and handle.port
            }

    def restart_counts(self) -> Dict[str, int]:
        """``{slot: restarts}`` — how often each slot has been respawned."""
        with self._lock:
            return {key: handle.restarts for key, handle in self._handles.items()}

    def describe(self) -> List[Dict[str, object]]:
        """Per-slot identity snapshots: member, endpoint, liveness, respawns.

        The attribution record the router's aggregated ``/stats`` and the
        cluster CLI print — one entry per slot whether or not a process is
        currently bound to it.
        """
        with self._lock:
            return [
                {
                    "member": handle.key,
                    "endpoint": (
                        handle.address if handle.alive and handle.port else None
                    ),
                    "alive": bool(handle.alive and handle.port),
                    "restarts": handle.restarts,
                }
                for handle in self._handles.values()
            ]

    def notify_failure(self, key: str) -> None:
        """Tell the supervisor a replica misbehaved (router saw I/O errors).

        Kills the process so the monitor's normal respawn path picks it
        up — one recovery mechanism, not two.
        """
        with self._lock:
            handle = self._handles.get(key)
            process = handle.process if handle is not None else None
        if process is not None and process.poll() is None:
            process.terminate()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _command(self) -> List[str]:
        command = [
            sys.executable,
            "-m",
            "repro.service",
            "--host",
            self._host,
            "--port",
            "0",
            "--snapshot",
            self._snapshot_dir,
        ]
        if self._shared_store is not None:
            command += ["--shared-store", self._shared_store]
        return command + self._extra_args

    def _spawn(self, handle: ReplicaHandle) -> None:
        process = subprocess.Popen(
            self._command(),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        host, port = self._await_banner(process, handle.key)
        with self._lock:
            handle.process = process
            handle.host = host
            handle.port = port

    def _await_banner(self, process: subprocess.Popen, key: str):
        """Parse the bound address off the replica's first stdout line."""
        result: Dict[str, object] = {}

        def _read() -> None:
            assert process.stdout is not None
            for line in process.stdout:
                if "address" not in result:
                    match = _BANNER.match(line)
                    if match:
                        result["address"] = (match.group(1), int(match.group(2)))
                # Keep draining forever (daemon thread): an undrained pipe
                # eventually blocks the replica's prints.

        thread = threading.Thread(
            target=_read, name=f"repro-cluster-{key}-stdout", daemon=True
        )
        thread.start()
        deadline = time.monotonic() + _STARTUP_TIMEOUT
        while time.monotonic() < deadline:
            if "address" in result:
                return result["address"]
            if process.poll() is not None:
                raise ClusterError(
                    f"replica {key} exited with status {process.returncode} "
                    "before binding; run its command manually to see why: "
                    f"{' '.join(self._command())}"
                )
            time.sleep(0.01)
        process.kill()
        raise ClusterError(
            f"replica {key} did not print its bound address within "
            f"{_STARTUP_TIMEOUT:.0f}s"
        )

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self._poll_interval):
            now = time.monotonic()
            for handle in list(self._handles.values()):
                with self._lock:
                    dead = not handle.alive
                    due = handle.restart_at <= now
                if not dead:
                    continue
                if not due:
                    continue
                with self._lock:
                    handle.restarts += 1
                    delay = min(
                        RESTART_BASE_DELAY * (2 ** (handle.restarts - 1)),
                        MAX_RESTART_DELAY,
                    )
                    handle.restart_at = now + delay
                try:
                    self._spawn(handle)
                except ClusterError:
                    # Spawn failed (e.g. crash loop); the backoff above
                    # already spaces out the next attempt.
                    continue
