"""Scale-out serving: warm snapshots fanned out to shared-nothing replicas.

The single-process service (:mod:`repro.service`) tops out at one CPU's
throughput.  This package scales it horizontally without giving up the
determinism contract — every answer is still a pure function of ``(graph
fingerprint, query canonical key, config fingerprint)``, whichever
replica computes it:

* :mod:`repro.cluster.supervisor` — :class:`ReplicaSupervisor`: N
  ``repro.service`` processes warm-started from one prepared-state
  snapshot (:mod:`repro.service.snapshot`), monitored and respawned with
  capped backoff.  Shared-nothing: replicas share only the immutable
  snapshot and the append-only result store,
* :mod:`repro.cluster.ring` — :class:`HashRing`: consistent hashing with
  virtual nodes over stable replica identities, so respawns never move
  keys,
* :mod:`repro.cluster.router` — :class:`Router`: a front-end speaking
  the service's exact wire format, forwarding each query to the replica
  owning its key (graph fingerprint + query canonical key), failing over
  when replicas die, and aggregating ``/stats`` / ``/healthz``,
* :mod:`repro.cluster.client` — :class:`ClusterClient`: a
  :class:`~repro.service.client.ServiceClient` with 429
  retry-with-backoff on by default,
* the shared tiers re-exported from :mod:`repro.service`:
  :class:`~repro.service.store.SharedResultStore` (persistent sqlite
  result tier under each replica's memory cache) and the snapshot
  save/load pair.

Run a cluster from the command line (or the ``repro-cluster`` script)::

    python -m repro.cluster --replicas 2 --snapshot-dir snap/ \
        --graphs karate,tokyo

which builds the snapshot on first use, launches router + replicas, and
prints one parseable banner line.  Point any service client at the
router's address — the wire format is identical.
"""

from repro.cluster.client import ClusterClient
from repro.cluster.ring import HashRing
from repro.cluster.router import Router, RouterStats
from repro.cluster.supervisor import ReplicaHandle, ReplicaSupervisor
from repro.service.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    load_catalog_snapshot,
    save_catalog_snapshot,
)
from repro.service.store import SharedResultStore, StoreStats

__all__ = [
    "ClusterClient",
    "HashRing",
    "ReplicaHandle",
    "ReplicaSupervisor",
    "Router",
    "RouterStats",
    "SNAPSHOT_FORMAT_VERSION",
    "SharedResultStore",
    "StoreStats",
    "load_catalog_snapshot",
    "save_catalog_snapshot",
]
