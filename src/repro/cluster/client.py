"""The cluster client: a :class:`ServiceClient` with retries turned on.

The router speaks the service's exact wire format, so the cluster client
*is* a :class:`~repro.service.client.ServiceClient` — same endpoints,
same typed responses — differing only in defaults: bounded 429
retry-with-backoff is enabled out of the box.  Against a single
overloaded replica, retrying mostly amplifies load; against a router
whose replicas drain queues in parallel and whose supervisor respawns
crashed ones, a short honored ``Retry-After`` wait is usually all it
takes for the request to land.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict

from repro.service.client import ServiceClient

__all__ = ["ClusterClient"]

#: Default retry budget of a cluster client (a single service client
#: defaults to 0 — fail fast — for the single-replica reasons above).
DEFAULT_MAX_RETRIES = 4


class ClusterClient(ServiceClient):
    """Blocking client of one cluster router endpoint.

    Identical to :class:`~repro.service.client.ServiceClient` except that
    ``max_retries`` defaults to :data:`DEFAULT_MAX_RETRIES`; responses
    additionally carry the serving replica in ``raw["served_by"]``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8360,
        *,
        timeout: float = 300.0,
        max_retries: int = DEFAULT_MAX_RETRIES,
        backoff: float = 0.05,
        max_backoff: float = 2.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        super().__init__(
            host,
            port,
            timeout=timeout,
            max_retries=max_retries,
            backoff=backoff,
            max_backoff=max_backoff,
            sleep=sleep,
        )

    def replica_stats(self) -> Dict[str, Dict[str, Any]]:
        """The per-replica sections of the router's aggregated ``/stats``.

        Keyed by replica slot; every section leads with its identity —
        ``member``, ``endpoint``, supervisor ``restarts`` — ahead of the
        replica's own service counters, so aggregated numbers remain
        attributable to the process that produced them.
        """
        return self.stats().get("replicas", {})
