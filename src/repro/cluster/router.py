"""The cluster front-end: one address, consistent routing, failover.

The :class:`Router` speaks exactly the service's JSON/HTTP wire format —
a :class:`~repro.service.client.ServiceClient` pointed at the router
cannot tell it from a single replica — and forwards each query to the
replica that owns its routing key on the consistent-hash ring:

    ``graph_fingerprint | query.canonical_key()``

The graph fingerprint leads (a replica accumulates affinity for the
graphs it serves), and the query key refines it so a workload on *one*
graph — the common case — still spreads over every replica instead of
saturating a single owner.  Placement is per-*key*, which is exactly the
unit of the replicas' result caches: repeats of a query hit the same
replica's warm memory cache, while distinct queries fan out.

Failure handling is two-layer.  The router walks the ring's preference
list when a forward fails (the answer is deterministic, so *any* replica
can serve any key — affinity is an optimization, never a correctness
constraint), counting a ``failovers``; and it reports the replica to the
supervisor, whose monitor respawns it with backoff.  ``/stats`` and
``/healthz`` aggregate over every live replica, adding the router's own
counters and the supervisor's restart counts.

``POST /update`` is the one write path and the one *broadcast*: a graph
delta must reach every live replica or the shared-nothing fleet forks,
so the router fans it out to all of them and only answers 200 when all
of them did (replicas launched without ``--allow-updates`` answer 403,
surfacing the read-only default).  A successful update drops the learned
fingerprint map so routing keys re-learn the new content fingerprint.

Observability: an ``X-Repro-Trace`` header (or a ``"timings": true``
request field) rides through to the owning replica, so one trace id
spans router → replica → engine and the replica's ``timings`` section
comes back with the router's own forwarding span stitched in.  ``GET
/metrics`` scrapes every live replica's exposition, re-labels each
series with ``replica="..."``, and merges them with the router's own
registry and forwarding counters into one Prometheus text page.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.queries import query_from_dict
from repro.exceptions import ClusterError
from repro.cluster.ring import HashRing
from repro.cluster.supervisor import ReplicaSupervisor
from repro.obs import bridge, get_registry
from repro.obs.metrics import (
    MetricsRegistry,
    PROMETHEUS_CONTENT_TYPE,
    parse_prometheus_text,
)
from repro.obs.trace import TRACE_HEADER, new_trace, parse_header

__all__ = ["Router", "RouterStats"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}

#: Per-connection read timeout (seconds) on the client side of the router.
_IO_TIMEOUT = 30.0

#: Largest request body the router will buffer (mirrors the service).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Paths worth their own latency series; everything else collapses into
#: one ``path="other"`` label so probes cannot explode the cardinality.
_METERED_PATHS = frozenset(
    {"/healthz", "/graphs", "/stats", "/metrics", "/query", "/query_batch", "/update"}
)


@dataclass
class RouterStats:
    """Forwarding counters of one :class:`Router`."""

    requests: int = 0
    forwarded: int = 0
    failovers: int = 0
    errors: int = 0
    no_replica: int = 0
    updates: int = 0

    def to_dict(self) -> Dict[str, int]:
        return asdict(self)


class Router:
    """Route service requests onto a supervised replica pool.

    Parameters
    ----------
    supervisor:
        The (started) :class:`ReplicaSupervisor` owning the replicas.
        The ring is built over its slot identities, so respawns (new
        ports) never move keys.
    host / port:
        The router's own bind address (``port=0`` for ephemeral).
    route_by:
        ``"query"`` (default) keys the ring by graph fingerprint *and*
        query canonical key; ``"graph"`` by fingerprint alone, pinning
        each graph wholly to one replica (useful when per-graph engine
        state dwarfs the query mix).
    forward_timeout:
        Seconds one forwarded request may take end to end.
    registry:
        The :class:`~repro.obs.metrics.MetricsRegistry` behind the
        router's own series on ``GET /metrics`` (front-end latency by
        path).  Defaults to the process-global registry.
    """

    def __init__(
        self,
        supervisor: ReplicaSupervisor,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        route_by: str = "query",
        forward_timeout: float = 300.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if route_by not in ("query", "graph"):
            raise ClusterError(
                f"route_by must be 'query' or 'graph', got {route_by!r}"
            )
        self._supervisor = supervisor
        self._host = host
        self._requested_port = port
        self._route_by = route_by
        self._forward_timeout = forward_timeout
        self._registry = registry if registry is not None else get_registry()
        self._request_seconds = self._registry.histogram(
            "repro_router_request_seconds",
            "Router front-end latency by path.",
            labels=("path",),
        )
        self._ring = HashRing(supervisor.keys())
        self._stats = RouterStats()
        self._stats_lock = threading.Lock()
        self._fingerprints: Dict[str, str] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._port: Optional[int] = None

    # ------------------------------------------------------------------
    # Lifecycle (mirrors ServiceServer)
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        """The bind host."""
        return self._host

    @property
    def port(self) -> int:
        """The bound port (available once the router has started)."""
        if self._port is None:
            raise ClusterError("the router has not been started yet")
        return self._port

    @property
    def address(self) -> str:
        """``host:port`` of the running router."""
        return f"{self._host}:{self.port}"

    def stats(self) -> RouterStats:
        """An independent snapshot of the router's forwarding counters."""
        with self._stats_lock:
            return RouterStats(**asdict(self._stats))

    async def start(self) -> "Router":
        """Bind and start accepting connections on the running loop."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._requested_port
        )
        self._port = self._server.sockets[0].getsockname()[1]
        return self

    def start_background(self) -> "Router":
        """Run the router on a daemon thread; returns once it is bound."""
        ready = threading.Event()
        startup_error: Dict[str, BaseException] = {}

        def _run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.start())
            except BaseException as error:
                startup_error["error"] = error
                ready.set()
                loop.close()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

        self._thread = threading.Thread(
            target=_run, name="repro-cluster-router", daemon=True
        )
        self._thread.start()
        ready.wait()
        if "error" in startup_error:
            raise startup_error["error"]
        return self

    def close(self) -> None:
        """Stop accepting and stop the loop thread (replicas keep running)."""
        loop, server = self._loop, self._server
        if loop is not None and server is not None and loop.is_running():

            def _shutdown() -> None:
                server.close()
                loop.stop()

            loop.call_soon_threadsafe(_shutdown)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def routing_key(self, graph: str, query_payload: Any) -> str:
        """The ring key of one query (public so tests can predict owners)."""
        fingerprint = self._fingerprints.get(graph, graph)
        if self._route_by == "graph":
            return fingerprint
        try:
            canonical = query_from_dict(query_payload).canonical_key()
        except Exception:
            # Malformed queries still route (the replica will answer 400
            # with the real error); any stable key works.
            canonical = json.dumps(query_payload, sort_keys=True, default=repr)
        return f"{fingerprint}|{canonical}"

    async def _refresh_fingerprints(self) -> None:
        """Learn ``{graph name: content fingerprint}`` from a live replica.

        Best-effort: until it succeeds, names themselves serve as ring
        keys — still deterministic, merely not content-addressed.
        """
        # Slot order (replica-0, replica-1, ...) is insertion-ordered and
        # only picks which replica answers first; the learned mapping is
        # identical whichever one does.
        for key, endpoint in self._supervisor.live_endpoints().items():  # reprolint: ok(ORD001)
            try:
                status, payload = await self._http_request(
                    endpoint, "GET", "/graphs"
                )
            except (OSError, asyncio.TimeoutError):
                continue
            if status == 200:
                self._fingerprints = {
                    entry["name"]: entry["fingerprint"]
                    for entry in payload.get("graphs", [])
                }
                return

    # ------------------------------------------------------------------
    # Connection handling (single-request connections, like the service)
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        status, payload = 500, {"error": "internal error"}
        try:
            parsed = await asyncio.wait_for(self._read_request(reader), _IO_TIMEOUT)
        except asyncio.TimeoutError:
            parsed, status, payload = None, 400, {"error": "request read timed out"}
        except Exception as error:
            parsed, status, payload = None, 400, {
                "error": f"malformed request: {error}"
            }
        else:
            if parsed is None:
                return
        if parsed is not None:
            method, path, body, request_headers = parsed
            with self._stats_lock:
                self._stats.requests += 1
            started = time.perf_counter()
            try:
                status, payload = await self._route(
                    method, path, body, request_headers
                )
            except Exception as error:
                with self._stats_lock:
                    self._stats.errors += 1
                status, payload = 500, {
                    "error": str(error),
                    "error_type": type(error).__name__,
                }
            metered = path.split("?", 1)[0]
            if metered not in _METERED_PATHS:
                metered = "other"
            self._request_seconds.labels(path=metered).observe(
                time.perf_counter() - started
            )
        try:
            if isinstance(payload, str):
                blob = payload.encode("utf-8")
                content_type = PROMETHEUS_CONTENT_TYPE
            else:
                blob = json.dumps(payload, default=repr).encode("utf-8")
                content_type = "application/json"
            headers = [
                f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(blob)}",
                "Connection: close",
            ]
            writer.write(("\r\n".join(headers) + "\r\n\r\n").encode("ascii") + blob)
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Optional[Tuple[str, str, bytes, Dict[str, str]]]:
        request_line = await reader.readline()
        if not request_line.strip():
            return None
        parts = request_line.decode("ascii", "replace").split()
        if len(parts) < 2:
            raise ValueError(f"bad request line {request_line!r}")
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("ascii", "replace").partition(":")
            headers[name.strip().lower()] = value.strip()
            if name.strip().lower() == "content-length":
                content_length = int(value.strip())
        if content_length > MAX_BODY_BYTES:
            raise ValueError(
                f"request body of {content_length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        body = await reader.readexactly(content_length) if content_length else b""
        return method, path, body, headers

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(
        self, method: str, path: str, body: bytes, headers: Dict[str, str]
    ) -> Tuple[int, Any]:
        path = path.split("?", 1)[0]
        if path == "/healthz" and method == "GET":
            return await self._aggregate_healthz()
        if path == "/stats" and method == "GET":
            return await self._aggregate_stats()
        if path == "/metrics" and method == "GET":
            return 200, await self._aggregate_metrics()
        if path == "/graphs" and method == "GET":
            return await self._forward_any("GET", "/graphs")
        if path == "/query":
            if method != "POST":
                return 405, {"error": "/query expects POST"}
            return await self._forward_query(body, headers)
        if path == "/query_batch":
            if method != "POST":
                return 405, {"error": "/query_batch expects POST"}
            return await self._forward_batch(body, headers)
        if path == "/update":
            if method != "POST":
                return 405, {"error": "/update expects POST"}
            return await self._forward_update(body)
        return 404, {"error": f"unknown endpoint {path!r}"}

    async def _forward_query(
        self, body: bytes, headers: Dict[str, str]
    ) -> Tuple[int, Dict[str, Any]]:
        try:
            payload = json.loads(body.decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("request body must be a JSON object")
            graph = payload["graph"]
        except (ValueError, KeyError) as error:
            return 400, {"error": f"bad request body: {error}"}
        if not self._fingerprints:
            await self._refresh_fingerprints()
        key = self.routing_key(graph, payload.get("query"))
        # Adopt the caller's trace id (or mint one when the body asks for
        # timings) and propagate it to the replica, so one id spans
        # router → replica → engine.
        trace_id = parse_header(headers.get(TRACE_HEADER.lower()))
        trace = (
            new_trace(trace_id)
            if (trace_id or bool(payload.get("timings")))
            else None
        )
        extra_headers = {TRACE_HEADER: trace.trace_id} if trace is not None else None
        started = time.perf_counter()
        status, answer = await self._forward_keyed(
            "POST", "/query", body, key, extra_headers=extra_headers
        )
        if trace is not None and isinstance(answer, dict):
            timings = answer.get("timings")
            if isinstance(timings, dict):
                # The replica built its trace from the forwarded id; add
                # the router's enveloping span so the timeline shows the
                # hop's full cost (forward + failovers + transport).
                timings.setdefault("spans", []).insert(
                    0,
                    {
                        "name": "router.forward",
                        "start_ms": 0.0,
                        "wall_ms": round((time.perf_counter() - started) * 1000.0, 3),
                    },
                )
        return status, answer

    async def _forward_batch(
        self, body: bytes, headers: Dict[str, str]
    ) -> Tuple[int, Dict[str, Any]]:
        """Scatter a batch over the ring, gather in submission order.

        Items are partitioned by owning replica and each partition goes
        out as one ``/query_batch`` sub-request, concurrently; replicas
        keep their micro-batching advantage for the items they own.  A
        failed partition degrades to per-item error entries — batch
        semantics stay per-item, exactly like a single replica's.
        """
        try:
            payload = json.loads(body.decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("request body must be a JSON object")
            graph = payload["graph"]
            queries = payload["queries"]
            if not isinstance(queries, list):
                raise ValueError("'queries' must be a list")
        except (ValueError, KeyError) as error:
            return 400, {"error": f"bad request body: {error}"}
        if not self._fingerprints:
            await self._refresh_fingerprints()
        trace_id = parse_header(headers.get(TRACE_HEADER.lower()))
        extra_headers = {TRACE_HEADER: trace_id} if trace_id else None

        partitions: Dict[str, List[int]] = {}
        for position, query in enumerate(queries):
            owner_key = self.routing_key(graph, query)
            try:
                owner = self._preferred_live(owner_key)[0]
            except ClusterError:
                with self._stats_lock:
                    self._stats.no_replica += 1
                return 503, {"error": "no live replica to serve the batch"}
            partitions.setdefault(owner, []).append(position)

        results: List[Optional[Dict[str, Any]]] = [None] * len(queries)

        async def _run_partition(member: str, positions: List[int]) -> None:
            sub_body = json.dumps(
                {"graph": graph, "queries": [queries[i] for i in positions]}
            ).encode("utf-8")
            # Failover starts from the partition's owner and walks the
            # same preference order every router would.
            status, payload = await self._forward_with_failover(
                "POST",
                "/query_batch",
                sub_body,
                first=member,
                extra_headers=extra_headers,
            )
            if status == 200:
                sub_results = payload.get("results", [])
                for offset, position in enumerate(positions):
                    if offset < len(sub_results):
                        results[position] = sub_results[offset]
                    else:  # pragma: no cover - defensive
                        results[position] = {
                            "error": "replica returned too few results",
                            "error_type": "ClusterError",
                        }
            else:
                error = {
                    "error": str(payload.get("error", f"status {status}")),
                    "error_type": payload.get("error_type", "ClusterError"),
                }
                for position in positions:
                    results[position] = dict(error)

        await asyncio.gather(
            *(
                _run_partition(member, positions)
                for member, positions in partitions.items()
            )
        )
        return 200, {"graph": graph, "results": results}

    async def _forward_update(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        """Broadcast a graph delta to *every* live replica.

        Queries route to one owner, but replicas are shared-nothing: a
        delta applied to only one would silently fork the fleet, so an
        update is all-or-error.  Every live replica gets the same
        ``POST /update``; the response reports each replica's outcome
        under ``"replicas"`` and carries the first replica's payload as
        the summary (the catalog's update result is deterministic, so
        all successful replicas report the same fingerprints/version).
        Any non-200 answer comes back as that failure's status — the
        caller must treat the fleet as divergent and rebuild or retry.
        Transport failures are reported to the supervisor like any
        failed forward, but never failed over: the point is reaching
        *this* replica, not any replica.
        """
        try:
            payload = json.loads(body.decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("request body must be a JSON object")
            payload["graph"]
        except (ValueError, KeyError) as error:
            return 400, {"error": f"bad request body: {error}"}
        live = self._supervisor.live_endpoints()
        if not live:
            with self._stats_lock:
                self._stats.no_replica += 1
            return 503, {"error": "no live replica to apply the update"}

        outcomes: Dict[str, Tuple[int, Dict[str, Any]]] = {}

        async def _apply(member: str, endpoint: str) -> None:
            try:
                status, answer = await asyncio.wait_for(
                    self._http_request(endpoint, "POST", "/update", body),
                    self._forward_timeout,
                )
            except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError) as error:
                self._supervisor.notify_failure(member)
                outcomes[member] = (502, {
                    "error": f"replica unreachable: {error}",
                    "error_type": "ClusterError",
                })
                return
            with self._stats_lock:
                self._stats.forwarded += 1
            outcomes[member] = (
                status, answer if isinstance(answer, dict) else {"result": answer}
            )

        await asyncio.gather(
            *(_apply(member, endpoint) for member, endpoint in live.items())
        )
        per_replica = {
            member: {"status": status, **answer}
            for member, (status, answer) in sorted(outcomes.items())
        }
        failures = [
            (status, answer)
            for status, answer in (outcomes[m] for m in sorted(outcomes))
            if status != 200
        ]
        if failures:
            with self._stats_lock:
                self._stats.errors += 1
            status, answer = failures[0]
            return status, {
                "error": str(answer.get("error", f"status {status}")),
                "error_type": answer.get("error_type", "ClusterError"),
                "replicas": per_replica,
            }
        with self._stats_lock:
            self._stats.updates += 1
        # The graph's content fingerprint changed on every replica: drop
        # the learned mapping so the next query re-learns it and routing
        # keys follow the new content.
        self._fingerprints = {}
        first = outcomes[sorted(outcomes)[0]][1]
        return 200, {**first, "replicas": per_replica}

    # ------------------------------------------------------------------
    # Forwarding primitives
    # ------------------------------------------------------------------
    def _preferred_live(self, key: str) -> List[str]:
        """The ring's preference list for ``key``, filtered to live replicas."""
        live = self._supervisor.live_endpoints()
        order = [member for member in self._ring.preference(key) if member in live]
        if not order:
            raise ClusterError("no live replica to serve the request")
        return order

    async def _forward_keyed(
        self,
        method: str,
        path: str,
        body: bytes,
        key: str,
        *,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        try:
            first = self._preferred_live(key)[0]
        except ClusterError as error:
            with self._stats_lock:
                self._stats.no_replica += 1
            return 503, {"error": str(error)}
        return await self._forward_with_failover(
            method, path, body, first=first, extra_headers=extra_headers
        )

    async def _forward_with_failover(
        self,
        method: str,
        path: str,
        body: bytes,
        *,
        first: str,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """Forward to ``first``, then down the live member list on failure.

        Only transport-level failures (connect/read errors, timeouts)
        fail over — an HTTP error status is the replica's *answer* and is
        passed through; retrying a 400 elsewhere would just repeat it.
        """
        live = self._supervisor.live_endpoints()
        members = [first] + [key for key in sorted(live) if key != first]
        last_error: Optional[BaseException] = None
        for attempt, member in enumerate(members):
            endpoint = live.get(member)
            if endpoint is None:
                continue
            try:
                status, payload = await asyncio.wait_for(
                    self._http_request(
                        endpoint, method, path, body, extra_headers=extra_headers
                    ),
                    self._forward_timeout,
                )
            except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError) as error:
                last_error = error
                self._supervisor.notify_failure(member)
                with self._stats_lock:
                    self._stats.failovers += 1
                live = self._supervisor.live_endpoints()
                continue
            with self._stats_lock:
                self._stats.forwarded += 1
            if isinstance(payload, dict):
                payload.setdefault("served_by", member)
            return status, payload
        with self._stats_lock:
            self._stats.errors += 1
        return 502, {
            "error": f"every live replica failed the request: {last_error}",
            "error_type": "ClusterError",
        }

    async def _forward_any(
        self, method: str, path: str, body: bytes = b""
    ) -> Tuple[int, Dict[str, Any]]:
        """Forward to whichever live replica answers first in slot order."""
        live = self._supervisor.live_endpoints()
        if not live:
            with self._stats_lock:
                self._stats.no_replica += 1
            return 503, {"error": "no live replica"}
        first = sorted(live)[0]
        return await self._forward_with_failover(method, path, body, first=first)

    async def _http_request(
        self,
        endpoint: str,
        method: str,
        path: str,
        body: bytes = b"",
        *,
        extra_headers: Optional[Dict[str, str]] = None,
        raw: bool = False,
    ) -> Tuple[int, Any]:
        """One HTTP exchange with a replica (single-request connection).

        With ``raw`` the response body comes back as decoded text instead
        of parsed JSON — the ``/metrics`` scrape path, where the replica
        answers Prometheus text.
        """
        host, _, port = endpoint.rpartition(":")
        reader, writer = await asyncio.open_connection(host, int(port))
        try:
            lines = [
                f"{method} {path} HTTP/1.1",
                f"Host: {endpoint}",
                "Connection: close",
            ]
            for name, value in (extra_headers or {}).items():
                lines.append(f"{name}: {value}")
            if body:
                lines += [
                    "Content-Type: application/json",
                    f"Content-Length: {len(body)}",
                ]
            writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body)
            await writer.drain()

            status_line = await reader.readline()
            parts = status_line.decode("ascii", "replace").split(None, 2)
            if len(parts) < 2 or not parts[1].isdigit():
                raise ConnectionError(f"bad status line {status_line!r}")
            status = int(parts[1])
            content_length = 0
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("ascii", "replace").partition(":")
                if name.strip().lower() == "content-length":
                    content_length = int(value.strip())
            blob = await reader.readexactly(content_length) if content_length else b""
            if raw:
                return status, blob.decode("utf-8", "replace")
            try:
                payload = json.loads(blob.decode("utf-8"))
            except ValueError:
                payload = {"error": blob.decode("utf-8", "replace")}
            return status, payload
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    async def _aggregate_healthz(self) -> Tuple[int, Dict[str, Any]]:
        live = self._supervisor.live_endpoints()
        replicas: Dict[str, Any] = {}

        async def _probe(member: str, endpoint: str) -> None:
            try:
                status, payload = await asyncio.wait_for(
                    self._http_request(endpoint, "GET", "/healthz"), _IO_TIMEOUT
                )
                replicas[member] = payload if status == 200 else {
                    "status": f"error {status}"
                }
            except (OSError, asyncio.TimeoutError, ConnectionError):
                replicas[member] = {"status": "unreachable"}

        await asyncio.gather(
            *(_probe(member, endpoint) for member, endpoint in live.items())
        )
        for member in self._supervisor.keys():
            replicas.setdefault(member, {"status": "down"})
        healthy = sum(
            1 for payload in replicas.values() if payload.get("status") == "ok"
        )
        status = "ok" if healthy else "down"
        return (200 if healthy else 503), {
            "status": status,
            "replicas": replicas,
            "healthy": healthy,
            "expected": len(self._supervisor.keys()),
        }

    async def _aggregate_stats(self) -> Tuple[int, Dict[str, Any]]:
        live = self._supervisor.live_endpoints()
        restarts = self._supervisor.restart_counts()
        per_replica: Dict[str, Any] = {}

        async def _collect(member: str, endpoint: str) -> None:
            # Each replica's section leads with its identity — slot key,
            # endpoint, supervisor respawn count — so aggregated numbers
            # stay attributable to the process that produced them.
            identity = {
                "member": member,
                "endpoint": endpoint,
                "restarts": int(restarts.get(member, 0)),
            }
            try:
                status, payload = await asyncio.wait_for(
                    self._http_request(endpoint, "GET", "/stats"), _IO_TIMEOUT
                )
                if status == 200:
                    per_replica[member] = {**identity, **payload}
                else:
                    per_replica[member] = {**identity, "status": f"error {status}"}
            except (OSError, asyncio.TimeoutError, ConnectionError):
                per_replica[member] = {**identity, "status": "unreachable"}

        await asyncio.gather(
            *(_collect(member, endpoint) for member, endpoint in live.items())
        )
        for member in self._supervisor.keys():
            per_replica.setdefault(
                member,
                {
                    "member": member,
                    "endpoint": None,
                    "restarts": int(restarts.get(member, 0)),
                    "status": "down",
                },
            )
        totals = {
            "requests": 0,
            "cache_hits": 0,
            "shared_store_hits": 0,
            "engine_evaluations": 0,
            "errors": 0,
        }
        for payload in per_replica.values():
            service = payload.get("service", {})
            for field in totals:
                totals[field] += int(service.get(field, 0))
        return 200, {
            "router": self.stats().to_dict(),
            "totals": totals,
            "replicas": dict(sorted(per_replica.items())),
            "restarts": restarts,
            "route_by": self._route_by,
        }

    async def _aggregate_metrics(self) -> str:
        """One Prometheus text page for the whole cluster.

        Scrapes every live replica's ``/metrics``, re-emits each parsed
        series with a ``replica="<member>"`` label, and appends the
        router's own registry plus its forwarding counters and the
        supervisor's respawn counts.  Replicas that fail to answer or
        serve unparseable text are skipped — a scrape must never take
        the router down.
        """
        live = self._supervisor.live_endpoints()
        scraped: Dict[str, Tuple[Any, Dict[str, str], Dict[str, str]]] = {}

        async def _scrape(member: str, endpoint: str) -> None:
            try:
                status, text = await asyncio.wait_for(
                    self._http_request(endpoint, "GET", "/metrics", raw=True),
                    _IO_TIMEOUT,
                )
            except (OSError, asyncio.TimeoutError, ConnectionError):
                return
            if status != 200 or not isinstance(text, str):
                return
            try:
                scraped[member] = parse_prometheus_text(text)
            except ValueError:
                return

        await asyncio.gather(
            *(_scrape(member, endpoint) for member, endpoint in live.items())
        )
        extra: List[bridge.Sample] = bridge.router_samples(
            self.stats().to_dict(), self._supervisor.restart_counts()
        )
        for member in sorted(scraped):
            samples, types, helps = scraped[member]
            for name, labels, value in samples:
                # Histogram component series (_bucket/_sum/_count) carry
                # their family's TYPE line; re-emitted standalone they
                # must go out untyped to stay valid exposition.
                base = name
                for suffix in ("_bucket", "_sum", "_count"):
                    if name.endswith(suffix) and name[: -len(suffix)] in types:
                        base = name[: -len(suffix)]
                        break
                kind = types.get(base, "untyped") if base == name else "untyped"
                extra.append(
                    (
                        name,
                        kind,
                        helps.get(base, ""),
                        {**labels, "replica": member},
                        value,
                    )
                )
        return self._registry.render(extra_samples=extra)
