"""A consistent-hash ring mapping routing keys onto replicas.

The router's placement problem: spread queries over N replicas so that
(a) the same key always lands on the same replica — each replica's
in-memory :class:`~repro.service.cache.ResultCache` and engine world
pools then serve repeats of *its* keys, instead of every replica slowly
warming a copy of everything — and (b) replica churn moves as few keys as
possible, so a restart does not cold-start the whole cluster's cache
affinity.  Consistent hashing with virtual nodes is the standard answer;
this is the textbook construction on :func:`hashlib.sha256` and
:mod:`bisect`, no dependencies.

Members are *stable identities* (the supervisor's ``replica-0`` ...
``replica-N-1`` slot names), not addresses: a respawned replica gets a
new port but keeps its slot, so the ring — and every key's placement —
is unchanged across crashes.

Determinism matters here too: the ring's placement is a pure function of
the member set and the key (seeded sha256, sorted tie-handling), so two
routers over the same replicas route identically — and a test can assert
exactly which replica owns a key.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ClusterError

__all__ = ["HashRing"]

#: Virtual nodes per member.  At 64 points per member the largest/smallest
#: member-load ratio over random keys stays within ~25% for small N —
#: plenty for a handful of replicas, cheap to build and to rebuild.
DEFAULT_VNODES = 64


def _point(label: str) -> int:
    """A member's (or key's) position on the ring: 64 bits of sha256."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent placement of string keys onto string members.

    Parameters
    ----------
    members:
        Initial member identities (order-irrelevant; duplicates rejected).
    vnodes:
        Virtual nodes per member — higher is smoother, linearly more
        memory and build time.
    """

    def __init__(
        self, members: Sequence[str] = (), *, vnodes: int = DEFAULT_VNODES
    ) -> None:
        if vnodes <= 0:
            raise ClusterError(f"vnodes must be positive, got {vnodes!r}")
        self._vnodes = vnodes
        self._members: Dict[str, List[int]] = {}
        self._points: List[Tuple[int, str]] = []
        for member in members:
            self.add(member)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add(self, member: str) -> None:
        """Add a member; its keys move *from* existing members, no others."""
        if not member:
            raise ClusterError("ring members need non-empty identities")
        if member in self._members:
            raise ClusterError(f"ring member {member!r} is already present")
        points = [
            _point(f"{member}#{replica_index}")
            for replica_index in range(self._vnodes)
        ]
        self._members[member] = points
        for point in points:
            # Ties between distinct members at one point are broken by the
            # member name so insertion order cannot influence placement.
            bisect.insort(self._points, (point, member))

    def remove(self, member: str) -> None:
        """Remove a member; only *its* keys move (to their ring successors)."""
        points = self._members.pop(member, None)
        if points is None:
            raise ClusterError(f"ring member {member!r} is not present")
        remove = {(point, member) for point in points}
        self._points = [entry for entry in self._points if entry not in remove]

    def members(self) -> List[str]:
        """The member identities, sorted."""
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def owner(self, key: str) -> str:
        """The member owning ``key`` (its first clockwise virtual node)."""
        if not self._points:
            raise ClusterError("the ring has no members to place keys on")
        index = bisect.bisect_right(self._points, (_point(key), "￿"))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def preference(self, key: str, count: Optional[int] = None) -> List[str]:
        """The first ``count`` *distinct* members clockwise from ``key``.

        This is the failover order: ``preference(key)[0]`` is the owner,
        and when it is down the router walks the rest — every router walks
        the same list, so a degraded cluster still routes coherently.
        """
        if not self._points:
            raise ClusterError("the ring has no members to place keys on")
        if count is None:
            count = len(self._members)
        sequence: List[str] = []
        start = bisect.bisect_right(self._points, (_point(key), "￿"))
        for offset in range(len(self._points)):
            member = self._points[(start + offset) % len(self._points)][1]
            if member not in sequence:
                sequence.append(member)
                if len(sequence) >= count:
                    break
        return sequence
