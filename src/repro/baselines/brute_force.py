"""Exact reliability by exhaustive enumeration of possible worlds.

With ``|E|`` edges there are ``2^{|E|}`` possible worlds, so this is only
usable on tiny graphs.  It is nevertheless invaluable as a ground-truth
oracle: the test suite checks every other algorithm (exact BDD, S²BDD with
and without preprocessing, the sampling baselines) against it on random
small graphs.

Two variants are provided: a float version and an exact
:class:`fractions.Fraction` version whose arithmetic cannot round.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Hashable, Sequence

from repro.graph.connectivity import terminals_connected
from repro.graph.possible_world import enumerate_possible_worlds
from repro.graph.uncertain_graph import UncertainGraph
from repro.utils.kahan import KahanSum

__all__ = ["brute_force_reliability", "brute_force_reliability_exact"]

Vertex = Hashable


def brute_force_reliability(
    graph: UncertainGraph,
    terminals: Sequence[Vertex],
    *,
    max_edges: int = 25,
) -> float:
    """Return the exact reliability as a float.

    Parameters
    ----------
    graph:
        The uncertain graph.
    terminals:
        Terminal vertices; fewer than two distinct terminals give 1.0.
    max_edges:
        Safety cap on ``|E|`` before refusing to enumerate.
    """
    terminals = graph.validate_terminals(terminals)
    if len(terminals) <= 1:
        return 1.0
    total = KahanSum()
    for world, _ in enumerate_possible_worlds(graph, max_edges=max_edges):
        if terminals_connected(graph, terminals, edge_ids=world.existing_edges):
            total.add(world.probability)
    return min(1.0, max(0.0, total.value))


def brute_force_reliability_exact(
    graph: UncertainGraph,
    terminals: Sequence[Vertex],
    *,
    max_edges: int = 25,
) -> Fraction:
    """Return the exact reliability as a :class:`fractions.Fraction`."""
    terminals = graph.validate_terminals(terminals)
    if len(terminals) <= 1:
        return Fraction(1)
    total = Fraction(0)
    for world, exact_probability in enumerate_possible_worlds(graph, max_edges=max_edges):
        if terminals_connected(graph, terminals, edge_ids=world.existing_edges):
            total += exact_probability
    return total
