"""Baseline reliability algorithms the paper compares against.

* :mod:`repro.baselines.brute_force` — exact enumeration of all possible
  worlds; only feasible for tiny graphs, used as the ground-truth oracle in
  the test suite.
* :mod:`repro.baselines.sampling` — the classic sampling approach
  (``Sampling(MC)`` and ``Sampling(HT)`` in the paper's figures): draw
  possible worlds and aggregate the connectivity indicator.
* :mod:`repro.baselines.exact_bdd` — the exact frontier-based BDD
  (TdZDD-style).  It is exact but its layer width grows exponentially, so
  it raises :class:`repro.exceptions.BDDLimitExceededError` on large
  graphs — the paper's "DNF" outcome.
"""

from repro.baselines.brute_force import brute_force_reliability, brute_force_reliability_exact
from repro.baselines.exact_bdd import ExactBDD, exact_bdd_reliability
from repro.baselines.sampling import SamplingEstimator, SamplingResult

__all__ = [
    "ExactBDD",
    "SamplingEstimator",
    "SamplingResult",
    "brute_force_reliability",
    "brute_force_reliability_exact",
    "exact_bdd_reliability",
]
