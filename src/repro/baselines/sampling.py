"""The classic sampling baseline (``Sampling(MC)`` / ``Sampling(HT)``).

This is the approach the paper improves on (Section 3.2.2): draw ``s``
possible worlds according to the edge probabilities, check terminal
connectivity in each, and aggregate with either the Monte Carlo or the
Horvitz–Thompson estimator.  Its cost is ``O(s · (|V| + |E|))`` and its
accuracy is limited by the variance ``R(1 − R)/s``.

Since the compiled graph kernel (:mod:`repro.graph.compiled`) the inner
loop runs over the graph's compiled form: each world is drawn as per-edge
existence flags (one uniform per edge, in edge order — the historical
stream, so results are bit-identical to the dict-based implementation) and
terminal connectivity is a single early-exiting CSR walk instead of a
dict-backed union-find rebuilt per sample.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Sequence, Tuple

from repro.core.estimators import EstimatorKind, horvitz_thompson_estimate
from repro.graph.compiled import compile_graph
from repro.graph.uncertain_graph import UncertainGraph
from repro.utils.rng import RandomLike, resolve_rng
from repro.utils.validation import check_positive_int

__all__ = ["SamplingEstimator", "SamplingResult"]

Vertex = Hashable


@dataclass
class SamplingResult:
    """Outcome of one baseline sampling run."""

    reliability: float
    samples_used: int
    positive_samples: int
    estimator: EstimatorKind

    @property
    def positive_fraction(self) -> float:
        """Fraction of sampled worlds in which the terminals were connected."""
        if self.samples_used == 0:
            return 0.0
        return self.positive_samples / self.samples_used


class SamplingEstimator:
    """Plain possible-world sampling with MC or HT aggregation.

    Parameters
    ----------
    samples:
        Number of possible worlds to draw.
    estimator:
        ``"mc"`` (default) or ``"ht"``.
    rng:
        Seed or generator for reproducibility.

    Example
    -------
    >>> from repro.graph.generators import cycle_graph
    >>> estimator = SamplingEstimator(samples=2000, rng=7)
    >>> result = estimator.estimate(cycle_graph(6, 0.9), [0, 3])
    >>> 0.0 <= result.reliability <= 1.0
    True
    """

    def __init__(
        self,
        samples: int = 10_000,
        *,
        estimator: EstimatorKind = EstimatorKind.MONTE_CARLO,
        rng: RandomLike = None,
    ) -> None:
        check_positive_int(samples, "samples")
        self._samples = samples
        self._estimator = EstimatorKind.coerce(estimator)
        self._rng = resolve_rng(rng)

    @property
    def samples(self) -> int:
        """The configured number of samples."""
        return self._samples

    def estimate(
        self, graph: UncertainGraph, terminals: Sequence[Vertex]
    ) -> SamplingResult:
        """Estimate the reliability of ``graph`` for ``terminals``."""
        terminals = graph.validate_terminals(terminals)
        if len(terminals) <= 1:
            return SamplingResult(1.0, 0, 0, self._estimator)

        compiled = compile_graph(graph)
        targets = compiled.vertex_indices(terminals)
        rng = self._rng
        want_ht = self._estimator is EstimatorKind.HORVITZ_THOMPSON
        sample_flags = compiled.sample_exist_flags
        connected_with_flags = compiled.connected_with_flags
        positive = 0
        # For the HT estimator we record (world probability, indicator) per
        # distinct sampled world (keyed by its edge bitmask); probabilities
        # are tracked in log space and converted at the end so that large
        # graphs do not underflow inside the inclusion-probability
        # computation (which takes floats anyway, but benefits from
        # exactly-zero handling).
        distinct_worlds: Dict[int, Tuple[float, bool]] = {}
        probabilities = compiled.edge_probability

        for _ in range(self._samples):
            flags = sample_flags(rng)
            connected = connected_with_flags(flags, targets)
            if connected:
                positive += 1
            if want_ht:
                key = compiled.mask_from_flags(flags)
                if key not in distinct_worlds:
                    # Accumulate the log probability per edge in edge order
                    # — the exact float sum the pre-kernel loop produced.
                    log_probability = 0.0
                    for exists, p in zip(flags, probabilities):
                        chosen = p if exists else 1.0 - p
                        log_probability += (
                            math.log(chosen) if chosen > 0.0 else float("-inf")
                        )
                    probability = (
                        math.exp(log_probability) if log_probability > -745.0 else 0.0
                    )
                    distinct_worlds[key] = (probability, connected)

        if self._estimator is EstimatorKind.MONTE_CARLO:
            reliability = positive / self._samples
        else:
            reliability = horvitz_thompson_estimate(
                distinct_worlds.values(), self._samples
            )
        return SamplingResult(
            reliability=reliability,
            samples_used=self._samples,
            positive_samples=positive,
            estimator=self._estimator,
        )
