"""The classic sampling baseline (``Sampling(MC)`` / ``Sampling(HT)``).

This is the approach the paper improves on (Section 3.2.2): draw ``s``
possible worlds according to the edge probabilities, check terminal
connectivity in each, and aggregate with either the Monte Carlo or the
Horvitz–Thompson estimator.  Its cost is ``O(s · (|V| + |E|))`` and its
accuracy is limited by the variance ``R(1 − R)/s``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Sequence, Tuple

from repro.core.estimators import EstimatorKind, horvitz_thompson_estimate
from repro.graph.uncertain_graph import UncertainGraph
from repro.utils.rng import RandomLike, resolve_rng
from repro.utils.union_find import UnionFind
from repro.utils.validation import check_positive_int

__all__ = ["SamplingEstimator", "SamplingResult"]

Vertex = Hashable


@dataclass
class SamplingResult:
    """Outcome of one baseline sampling run."""

    reliability: float
    samples_used: int
    positive_samples: int
    estimator: EstimatorKind

    @property
    def positive_fraction(self) -> float:
        """Fraction of sampled worlds in which the terminals were connected."""
        if self.samples_used == 0:
            return 0.0
        return self.positive_samples / self.samples_used


class SamplingEstimator:
    """Plain possible-world sampling with MC or HT aggregation.

    Parameters
    ----------
    samples:
        Number of possible worlds to draw.
    estimator:
        ``"mc"`` (default) or ``"ht"``.
    rng:
        Seed or generator for reproducibility.

    Example
    -------
    >>> from repro.graph.generators import cycle_graph
    >>> estimator = SamplingEstimator(samples=2000, rng=7)
    >>> result = estimator.estimate(cycle_graph(6, 0.9), [0, 3])
    >>> 0.0 <= result.reliability <= 1.0
    True
    """

    def __init__(
        self,
        samples: int = 10_000,
        *,
        estimator: EstimatorKind = EstimatorKind.MONTE_CARLO,
        rng: RandomLike = None,
    ) -> None:
        check_positive_int(samples, "samples")
        self._samples = samples
        self._estimator = EstimatorKind.coerce(estimator)
        self._rng = resolve_rng(rng)

    @property
    def samples(self) -> int:
        """The configured number of samples."""
        return self._samples

    def estimate(
        self, graph: UncertainGraph, terminals: Sequence[Vertex]
    ) -> SamplingResult:
        """Estimate the reliability of ``graph`` for ``terminals``."""
        terminals = graph.validate_terminals(terminals)
        if len(terminals) <= 1:
            return SamplingResult(1.0, 0, 0, self._estimator)

        edges = list(graph.edges())
        rng = self._rng
        positive = 0
        # For the HT estimator we record (world probability, indicator) per
        # distinct sampled world; probabilities are tracked in log space and
        # converted at the end so that large graphs do not underflow inside
        # the inclusion-probability computation (which takes floats anyway,
        # but benefits from exactly-zero handling).
        distinct_worlds: Dict[FrozenSet[int], Tuple[float, bool]] = {}

        for _ in range(self._samples):
            union_find = UnionFind()
            for terminal in terminals:
                union_find.add(terminal)
            existing: List[int] = []
            log_probability = 0.0
            for edge in edges:
                exists = rng.random() < edge.probability
                if exists:
                    existing.append(edge.id)
                    if edge.u != edge.v:
                        union_find.union(edge.u, edge.v)
                if self._estimator is EstimatorKind.HORVITZ_THOMPSON:
                    chosen = edge.probability if exists else 1.0 - edge.probability
                    log_probability += math.log(chosen) if chosen > 0.0 else float("-inf")
            connected = union_find.same_component(terminals)
            if connected:
                positive += 1
            if self._estimator is EstimatorKind.HORVITZ_THOMPSON:
                key = frozenset(existing)
                if key not in distinct_worlds:
                    probability = math.exp(log_probability) if log_probability > -745.0 else 0.0
                    distinct_worlds[key] = (probability, connected)

        if self._estimator is EstimatorKind.MONTE_CARLO:
            reliability = positive / self._samples
        else:
            reliability = horvitz_thompson_estimate(
                distinct_worlds.values(), self._samples
            )
        return SamplingResult(
            reliability=reliability,
            samples_used=self._samples,
            positive_samples=positive,
            estimator=self._estimator,
        )
