"""Exact frontier-based BDD baseline (TdZDD-style).

The traditional BDD-based approach (Section 3.2.1) constructs the full
frontier-based decision diagram and reads the exact reliability off the
1-sink.  It shares the state machinery of the S²BDD (the transition of
:mod:`repro.core.state` is exact) but never deletes nodes, so its layer
width — and therefore its memory footprint — can grow exponentially with
the graph size.  That is precisely the paper's motivation for the S²BDD:
the exact BDD "DNF"s on the large datasets.

A configurable node budget turns the memory blow-up into a clean
:class:`repro.exceptions.BDDLimitExceededError`, which the experiment
harness reports as DNF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

from repro.core.frontier import EdgeOrdering, build_frontier_plan
from repro.core.state import CONNECTED, DISCONNECTED, TransitionTable
from repro.exceptions import BDDLimitExceededError
from repro.graph.uncertain_graph import UncertainGraph
from repro.utils.kahan import KahanSum
from repro.utils.validation import check_positive_int

__all__ = ["ExactBDD", "ExactBDDResult", "exact_bdd_reliability"]

Vertex = Hashable


@dataclass
class ExactBDDResult:
    """Outcome of an exact BDD construction."""

    reliability: float
    peak_width: int
    total_nodes: int
    layers_processed: int


class ExactBDD:
    """Exact k-terminal reliability via a full frontier-based BDD.

    Parameters
    ----------
    graph:
        The uncertain graph.
    terminals:
        Terminal vertices.
    max_nodes:
        Budget on the total number of diagram nodes created before the
        construction aborts with :class:`BDDLimitExceededError`.
    edge_ordering:
        Edge-ordering strategy (shared with the S²BDD).
    """

    def __init__(
        self,
        graph: UncertainGraph,
        terminals: Sequence[Vertex],
        *,
        max_nodes: int = 2_000_000,
        edge_ordering: EdgeOrdering = EdgeOrdering.BFS,
    ) -> None:
        check_positive_int(max_nodes, "max_nodes")
        self._graph = graph
        self._terminals = graph.validate_terminals(terminals)
        self._k = len(self._terminals)
        self._max_nodes = max_nodes
        self._plan = build_frontier_plan(
            graph, strategy=EdgeOrdering(edge_ordering), terminals=self._terminals
        )

    def run(self) -> ExactBDDResult:
        """Construct the diagram and return the exact reliability."""
        plan = self._plan
        k = self._k

        if k <= 1:
            return ExactBDDResult(1.0, 0, 0, 0)
        if plan.num_edges == 0:
            return ExactBDDResult(0.0, 0, 0, 0)

        transitions = TransitionTable(plan, self._terminals)
        connected_mass = KahanSum()
        # Layers are dicts keyed by the Lemma-4.3 merge key; values are
        # [partition, counts, probability].
        current: Dict[Tuple, List] = {((), ()): [(), (), 1.0]}
        total_nodes = 1
        peak_width = 1
        layers_processed = 0

        for layer_index in range(plan.num_edges):
            if not current:
                break
            layers_processed = layer_index + 1
            edge = plan.edges[layer_index]
            next_nodes: Dict[Tuple, List] = {}
            branches = ((False, 1.0 - edge.probability), (True, edge.probability))
            apply = transitions.apply
            for partition, counts, probability in current.values():
                for exists, branch_probability in branches:
                    if branch_probability <= 0.0:
                        continue
                    child_probability = probability * branch_probability
                    sink, child_partition, child_counts, child_flags = apply(
                        layer_index, partition, counts, exists
                    )
                    if sink == CONNECTED:
                        connected_mass.add(child_probability)
                        continue
                    if sink == DISCONNECTED:
                        continue
                    key = (child_partition, child_flags)
                    node = next_nodes.get(key)
                    if node is not None:
                        node[2] += child_probability
                    else:
                        next_nodes[key] = [child_partition, child_counts, child_probability]
                        total_nodes += 1
                        if total_nodes > self._max_nodes:
                            raise BDDLimitExceededError(
                                f"exact BDD exceeded the node budget of "
                                f"{self._max_nodes} nodes at layer {layer_index + 1} "
                                f"of {plan.num_edges} (paper outcome: DNF)"
                            )
            current = next_nodes
            peak_width = max(peak_width, len(current))

        reliability = min(1.0, max(0.0, connected_mass.value))
        return ExactBDDResult(
            reliability=reliability,
            peak_width=peak_width,
            total_nodes=total_nodes,
            layers_processed=layers_processed,
        )


def exact_bdd_reliability(
    graph: UncertainGraph,
    terminals: Sequence[Vertex],
    *,
    max_nodes: int = 2_000_000,
    edge_ordering: EdgeOrdering = EdgeOrdering.BFS,
) -> float:
    """Convenience wrapper returning just the exact reliability."""
    return ExactBDD(
        graph, terminals, max_nodes=max_nodes, edge_ordering=edge_ordering
    ).run().reliability
